//! Step accounting for simulated executions.
//!
//! The paper's complexity measures are *individual step complexity* (the
//! maximum or expected number of operations executed by one process) and
//! *total step complexity* (the sum over all processes). Slots scheduled
//! to finished processes are no-ops and are not charged (§1.1).

use crate::op::OpKind;

/// Step counts collected by the [`Engine`](crate::engine::Engine).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Cost-weighted steps (equals `total_ops` under the unit-cost
    /// model).
    pub total_steps: u64,
    /// Raw operation count.
    pub total_ops: u64,
    /// Cost-weighted steps per process.
    pub per_process_steps: Vec<u64>,
    /// Raw operations per process.
    pub per_process_ops: Vec<u64>,
    /// Scheduled slots given to already-finished processes (free).
    pub skipped_slots: u64,
    /// Operation counts by kind, indexed by [`op_kind_index`].
    pub ops_by_kind: [u64; 6],
}

/// Dense index of an [`OpKind`] into [`Metrics::ops_by_kind`].
pub fn op_kind_index(kind: OpKind) -> usize {
    match kind {
        OpKind::RegisterRead => 0,
        OpKind::RegisterWrite => 1,
        OpKind::SnapshotUpdate => 2,
        OpKind::SnapshotScan => 3,
        OpKind::MaxRead => 4,
        OpKind::MaxWrite => 5,
    }
}

impl Metrics {
    /// Creates zeroed metrics for `n` processes.
    pub fn new(n: usize) -> Self {
        Self {
            per_process_steps: vec![0; n],
            per_process_ops: vec![0; n],
            ..Self::default()
        }
    }

    // All counter updates saturate: at the scales the event engine
    // reaches (and with user-supplied cost models), a wrapped counter
    // would silently corrupt slot-limit accounting, while a saturated
    // one at worst stops the run early with a clean
    // [`StopReason::SlotLimit`](crate::StopReason::SlotLimit).
    pub(crate) fn record(&mut self, pid: usize, kind: OpKind, cost: u64) {
        if pid >= self.per_process_steps.len() {
            // Lazily-built engines touch pids out of arrival order;
            // grow to the highest touched pid.
            self.per_process_steps.resize(pid + 1, 0);
            self.per_process_ops.resize(pid + 1, 0);
        }
        self.total_steps = self.total_steps.saturating_add(cost);
        self.total_ops = self.total_ops.saturating_add(1);
        self.per_process_steps[pid] = self.per_process_steps[pid].saturating_add(cost);
        self.per_process_ops[pid] = self.per_process_ops[pid].saturating_add(1);
        self.ops_by_kind[op_kind_index(kind)] += 1;
    }

    pub(crate) fn record_skip(&mut self) {
        self.skipped_slots = self.skipped_slots.saturating_add(1);
    }

    /// Extends the per-process vectors with zeros up to `n` entries, so
    /// a lazily-grown metrics becomes indexable for every declared pid
    /// (dense reports call this; sparse reports do not).
    pub(crate) fn pad_processes(&mut self, n: usize) {
        if self.per_process_steps.len() < n {
            self.per_process_steps.resize(n, 0);
            self.per_process_ops.resize(n, 0);
        }
    }

    /// Charged slots: executed operations plus free skips — the
    /// quantity [`Engine::limit_slots`](crate::Engine::limit_slots)
    /// budgets. Saturates instead of overflowing.
    pub fn scheduled_slots(&self) -> u64 {
        self.total_ops.saturating_add(self.skipped_slots)
    }

    /// The worst-case individual step complexity observed.
    pub fn max_individual_steps(&self) -> u64 {
        self.per_process_steps.iter().copied().max().unwrap_or(0)
    }

    /// The mean individual step complexity observed.
    pub fn mean_individual_steps(&self) -> f64 {
        if self.per_process_steps.is_empty() {
            return 0.0;
        }
        self.total_steps as f64 / self.per_process_steps.len() as f64
    }

    /// Operations of a given kind.
    pub fn ops_of_kind(&self, kind: OpKind) -> u64 {
        self.ops_by_kind[op_kind_index(kind)]
    }

    /// Absorbs the counts of `other` (element-wise sums), so per-trial
    /// metrics can be aggregated across a parallel sweep without
    /// materializing every run's report.
    pub fn merge(&mut self, other: &Metrics) {
        self.total_steps = self.total_steps.saturating_add(other.total_steps);
        self.total_ops = self.total_ops.saturating_add(other.total_ops);
        self.skipped_slots = self.skipped_slots.saturating_add(other.skipped_slots);
        if self.per_process_steps.len() < other.per_process_steps.len() {
            self.per_process_steps
                .resize(other.per_process_steps.len(), 0);
            self.per_process_ops.resize(other.per_process_ops.len(), 0);
        }
        for (a, b) in self
            .per_process_steps
            .iter_mut()
            .zip(&other.per_process_steps)
        {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.per_process_ops.iter_mut().zip(&other.per_process_ops) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.ops_by_kind.iter_mut().zip(&other.ops_by_kind) {
            *a = a.saturating_add(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = Metrics::new(2);
        m.record(0, OpKind::RegisterRead, 1);
        m.record(0, OpKind::RegisterWrite, 1);
        m.record(1, OpKind::SnapshotScan, 4);
        m.record_skip();
        assert_eq!(m.total_steps, 6);
        assert_eq!(m.total_ops, 3);
        assert_eq!(m.per_process_steps, vec![2, 4]);
        assert_eq!(m.per_process_ops, vec![2, 1]);
        assert_eq!(m.skipped_slots, 1);
        assert_eq!(m.ops_of_kind(OpKind::RegisterRead), 1);
        assert_eq!(m.ops_of_kind(OpKind::SnapshotScan), 1);
        assert_eq!(m.max_individual_steps(), 4);
        assert!((m.mean_individual_steps() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_elementwise() {
        let mut a = Metrics::new(2);
        a.record(0, OpKind::RegisterRead, 1);
        a.record(1, OpKind::SnapshotScan, 4);
        let mut b = Metrics::new(3);
        b.record(2, OpKind::MaxWrite, 2);
        b.record_skip();
        a.merge(&b);
        assert_eq!(a.total_steps, 7);
        assert_eq!(a.total_ops, 3);
        assert_eq!(a.per_process_steps, vec![1, 4, 2]);
        assert_eq!(a.skipped_slots, 1);
        assert_eq!(a.ops_of_kind(OpKind::MaxWrite), 1);
        // Merging is order-insensitive for integer counters.
        let mut c = Metrics::new(3);
        c.record(2, OpKind::MaxWrite, 2);
        c.record_skip();
        let mut d = Metrics::new(2);
        d.record(0, OpKind::RegisterRead, 1);
        d.record(1, OpKind::SnapshotScan, 4);
        c.merge(&d);
        assert_eq!(a, c);
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let mut m = Metrics::new(1);
        m.record(0, OpKind::SnapshotScan, u64::MAX);
        m.record(0, OpKind::SnapshotScan, u64::MAX);
        assert_eq!(m.total_steps, u64::MAX);
        assert_eq!(m.per_process_steps[0], u64::MAX);
        assert_eq!(m.total_ops, 2);
        let mut near_limit = Metrics::new(1);
        near_limit.total_ops = u64::MAX - 1;
        near_limit.skipped_slots = 7;
        assert_eq!(near_limit.scheduled_slots(), u64::MAX);
        let mut merged = Metrics::new(1);
        merged.total_steps = u64::MAX;
        merged.merge(&m);
        assert_eq!(merged.total_steps, u64::MAX);
    }

    #[test]
    fn record_grows_to_the_highest_touched_pid() {
        let mut m = Metrics::new(0);
        m.record(5, OpKind::RegisterRead, 1);
        assert_eq!(m.per_process_steps.len(), 6);
        assert_eq!(m.per_process_steps, vec![0, 0, 0, 0, 0, 1]);
        assert_eq!(m.total_ops, 1);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = Metrics::new(0);
        assert_eq!(m.max_individual_steps(), 0);
        assert_eq!(m.mean_individual_steps(), 0.0);
    }

    #[test]
    fn kind_indices_are_dense_and_distinct() {
        use std::collections::HashSet;
        let kinds = [
            OpKind::RegisterRead,
            OpKind::RegisterWrite,
            OpKind::SnapshotUpdate,
            OpKind::SnapshotScan,
            OpKind::MaxRead,
            OpKind::MaxWrite,
        ];
        let idx: HashSet<usize> = kinds.iter().map(|&k| op_kind_index(k)).collect();
        assert_eq!(idx.len(), 6);
        assert!(idx.iter().all(|&i| i < 6));
    }
}

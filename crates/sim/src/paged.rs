//! A lazily-populated fixed-length array backed by a page table.
//!
//! [`Memory`](crate::memory::Memory) used to allocate one
//! [`Register`](crate::register::Register) per declared layout slot up
//! front — O(n) space the moment an engine was built, even if the
//! schedule only ever touched a handful of processes. [`Paged`] keeps
//! the same indexed interface but allocates storage one fixed-size page
//! at a time, on first *write access* to any index in the page; pages
//! never touched cost one `Option` in the page table.

/// Entries per page. Small enough that a protocol touching one
/// register materializes ~kilobytes, large enough that a dense scan
/// stays cache-friendly.
const PAGE: usize = 1024;

/// A fixed-length array of `T` whose storage materializes per page on
/// first mutable access.
///
/// Reads of untouched indices see `None` (callers fall back to
/// `T::default()` semantics); mutable access materializes the page with
/// `T::default()` entries.
///
/// # Examples
///
/// ```
/// use sift_sim::paged::Paged;
/// let mut p: Paged<u32> = Paged::new(1_000_000);
/// assert_eq!(p.materialized(), 0);
/// *p.get_mut(123_456) = 7;
/// assert_eq!(p.get(123_456), Some(&7));
/// assert_eq!(p.get(0), None);
/// assert_eq!(p.materialized(), 1024, "one page");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Paged<T> {
    pages: Vec<Option<Box<[T]>>>,
    len: usize,
}

impl<T: Default + Clone> Paged<T> {
    /// Creates a paged array of logical length `len` with no pages
    /// materialized.
    pub fn new(len: usize) -> Self {
        Self {
            pages: vec![None; len.div_ceil(PAGE)],
            len,
        }
    }

    /// Logical length (the layout's declared slot count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries whose backing page has been materialized. Untouched
    /// entries cost nothing beyond the page table itself.
    pub fn materialized(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count() * PAGE
    }

    /// Reads entry `i`; `None` if its page was never materialized.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> Option<&T> {
        assert!(i < self.len, "index {i} out of range 0..{}", self.len);
        self.pages[i / PAGE].as_ref().map(|page| &page[i % PAGE])
    }

    /// Mutable access to entry `i`, materializing its page (with
    /// `T::default()` entries) on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len, "index {i} out of range 0..{}", self.len);
        let page =
            self.pages[i / PAGE].get_or_insert_with(|| vec![T::default(); PAGE].into_boxed_slice());
        &mut page[i % PAGE]
    }

    /// Iterates the materialized entries as `(index, &entry)`.
    pub fn iter_materialized(&self) -> impl Iterator<Item = (usize, &T)> {
        self.pages.iter().enumerate().flat_map(|(p, page)| {
            page.iter().flat_map(move |entries| {
                entries
                    .iter()
                    .enumerate()
                    .map(move |(j, e)| (p * PAGE + j, e))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_pages_cost_nothing() {
        let p: Paged<u64> = Paged::new(1_000_000);
        assert_eq!(p.len(), 1_000_000);
        assert_eq!(p.materialized(), 0);
        assert_eq!(p.get(999_999), None);
    }

    #[test]
    fn writes_materialize_only_their_page() {
        let mut p: Paged<u64> = Paged::new(10 * PAGE);
        *p.get_mut(0) = 1;
        *p.get_mut(5 * PAGE + 3) = 2;
        assert_eq!(p.materialized(), 2 * PAGE);
        assert_eq!(p.get(0), Some(&1));
        assert_eq!(p.get(1), Some(&0), "same page defaults are visible");
        assert_eq!(p.get(5 * PAGE + 3), Some(&2));
        assert_eq!(p.get(2 * PAGE), None);
    }

    #[test]
    fn iter_materialized_yields_touched_pages_in_order() {
        let mut p: Paged<u32> = Paged::new(3 * PAGE);
        *p.get_mut(2 * PAGE) = 9;
        let firsts: Vec<usize> = p
            .iter_materialized()
            .filter(|&(_, v)| *v == 9)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(firsts, vec![2 * PAGE]);
        assert_eq!(p.iter_materialized().count(), PAGE);
    }

    #[test]
    fn last_page_may_be_partial_logically() {
        let mut p: Paged<u8> = Paged::new(PAGE + 1);
        *p.get_mut(PAGE) = 3;
        assert_eq!(p.get(PAGE), Some(&3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let p: Paged<u8> = Paged::new(4);
        let _ = p.get(4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_mut_panics() {
        let mut p: Paged<u8> = Paged::new(4);
        let _ = p.get_mut(4);
    }

    #[test]
    fn zero_length_is_empty() {
        let p: Paged<u8> = Paged::new(0);
        assert!(p.is_empty());
        assert_eq!(p.materialized(), 0);
    }
}

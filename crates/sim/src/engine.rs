//! The execution engine: drives process state machines under an
//! oblivious-adversary schedule against simulated shared memory.
//!
//! Semantics (matching §1.1 of the paper):
//!
//! * At each schedule slot, the scheduled process executes exactly one
//!   shared-memory operation (atomically).
//! * Slots given to a finished process are free no-ops.
//! * The run ends when every process in the schedule's support has
//!   finished, when the schedule is exhausted, or when an explicit slot
//!   limit is reached.
//!
//! Local computation between operations is free: the engine resumes the
//! state machine with the operation's result immediately after executing
//! it, so the *next* operation is ready for the process's next slot, and
//! a process whose final operation completes needs no extra slot to
//! return its output.

use crate::ids::ProcessId;
use crate::layout::Layout;
use crate::memory::Memory;
use crate::metrics::Metrics;
use crate::obs::RingSink;
use crate::op::Op;
use crate::process::{Process, Step};
use crate::schedule::Schedule;
use crate::trace::{Trace, TraceEvent};

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every process in the schedule's support finished.
    AllDone,
    /// The schedule produced no more slots.
    ScheduleExhausted,
    /// The configured slot limit was reached.
    SlotLimit,
}

enum Slot<P: Process> {
    Running {
        proc: P,
        pending: Option<Op<P::Value>>,
    },
    Done {
        proc: P,
        output: P::Output,
    },
    /// Transient state while a slot is being advanced.
    Vacant,
}

/// The engine owning memory, processes, and accounting for one run.
///
/// # Examples
///
/// ```
/// use sift_sim::{Engine, LayoutBuilder, Op, OpResult, Process, RegisterId, Step};
/// use sift_sim::schedule::RoundRobin;
///
/// struct WriteOnce(RegisterId, u32, bool);
/// impl Process for WriteOnce {
///     type Value = u32;
///     type Output = u32;
///     fn step(&mut self, _prev: Option<OpResult<u32>>) -> Step<u32, u32> {
///         if self.2 {
///             Step::Done(self.1)
///         } else {
///             self.2 = true;
///             Step::Issue(Op::RegisterWrite(self.0, self.1))
///         }
///     }
/// }
///
/// let mut b = LayoutBuilder::new();
/// let r = b.register();
/// let layout = b.build();
/// let procs = vec![WriteOnce(r, 10, false), WriteOnce(r, 20, false)];
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(2));
/// assert_eq!(report.outputs, vec![Some(10), Some(20)]);
/// assert_eq!(report.metrics.total_steps, 2);
/// ```
pub struct Engine<P: Process> {
    memory: Memory<P::Value>,
    slots: Vec<Slot<P>>,
    metrics: Metrics,
    trace: Option<Trace>,
    ring: Option<RingSink>,
    slot_limit: u64,
    live: usize,
}

impl<P: Process> Engine<P> {
    /// Creates an engine over fresh unit-cost memory for `layout`.
    pub fn new(layout: &Layout, processes: Vec<P>) -> Self {
        Self::with_memory(Memory::new(layout), processes)
    }

    /// Creates an engine over explicitly constructed memory (e.g. with a
    /// non-default [`CostModel`](crate::memory::CostModel)).
    pub fn with_memory(memory: Memory<P::Value>, processes: Vec<P>) -> Self {
        let n = processes.len();
        let mut live = 0;
        let slots = processes
            .into_iter()
            .map(|mut proc| match proc.step(None) {
                Step::Issue(op) => {
                    live += 1;
                    Slot::Running {
                        proc,
                        pending: Some(op),
                    }
                }
                Step::Done(output) => Slot::Done { proc, output },
            })
            .collect();
        Self {
            memory,
            slots,
            metrics: Metrics::new(n),
            trace: None,
            ring: None,
            slot_limit: u64::MAX,
            live,
        }
    }

    /// Enables trace recording (off by default; traces can be large).
    pub fn enable_trace(&mut self) -> &mut Self {
        self.trace = Some(Trace::new());
        self
    }

    /// Enables the bounded step-event ring: the last `capacity` charged
    /// operations are retained in [`RunReport::ring`], at fixed memory
    /// cost regardless of run length (unlike [`enable_trace`]
    /// (Self::enable_trace), which keeps everything). Both sinks can be
    /// on at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace_ring(&mut self, capacity: usize) -> &mut Self {
        self.ring = Some(RingSink::new(capacity));
        self
    }

    /// Caps the number of *charged* slots; the run stops with
    /// [`StopReason::SlotLimit`] when reached. Useful for protocols with
    /// unbounded worst cases (e.g. Chor–Israeli–Li).
    pub fn limit_slots(&mut self, limit: u64) -> &mut Self {
        self.slot_limit = limit;
        self
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.slots.len()
    }

    fn advance(&mut self, pid: ProcessId, schedule: &mut impl Schedule) -> bool {
        let slot = &mut self.slots[pid.index()];
        let (mut proc, op) = match std::mem::replace(slot, Slot::Vacant) {
            Slot::Running { proc, pending } => (
                proc,
                pending.expect("running process always has a pending op"),
            ),
            done @ Slot::Done { .. } => {
                *slot = done;
                self.metrics.record_skip();
                return false;
            }
            Slot::Vacant => unreachable!("vacant slot outside advance"),
        };

        let kind = op.kind();
        let cost = self.memory.cost(&op);
        let result = self.memory.execute(op);
        let event = TraceEvent {
            slot: self.metrics.total_ops,
            pid,
            kind,
        };
        if let Some(trace) = &mut self.trace {
            trace.push(event);
        }
        if let Some(ring) = &mut self.ring {
            ring.push(event);
        }
        self.metrics.record(pid.index(), kind, cost);

        match proc.step(Some(result)) {
            Step::Issue(next) => {
                self.slots[pid.index()] = Slot::Running {
                    proc,
                    pending: Some(next),
                };
                false
            }
            Step::Done(output) => {
                self.slots[pid.index()] = Slot::Done { proc, output };
                self.live -= 1;
                schedule.on_done(pid);
                true
            }
        }
    }

    /// Runs under an **adaptive adversary**: before every step,
    /// `chooser` inspects the live processes — including their internal
    /// state and, crucially, the operation each is about to perform —
    /// plus the full memory contents, and picks who moves next.
    ///
    /// This is precisely the power the oblivious adversary is denied
    /// (§1.1), provided to quantify the gap: the paper's conciliators
    /// lose their agreement guarantees against it (experiment E20),
    /// which is why `Ω(n²)` total work is needed in the adaptive model
    /// (Attiya–Censor).
    ///
    /// The run ends when all processes finish or the slot limit is
    /// reached.
    ///
    /// # Panics
    ///
    /// Panics if `chooser` returns an id that is out of range or
    /// already finished.
    pub fn run_adaptive(
        mut self,
        mut chooser: impl FnMut(AdaptiveView<'_, P>) -> ProcessId,
    ) -> RunReport<P> {
        let reason = loop {
            if self.live == 0 {
                break StopReason::AllDone;
            }
            if self.metrics.total_ops + self.metrics.skipped_slots >= self.slot_limit {
                break StopReason::SlotLimit;
            }
            let live: Vec<(ProcessId, &P, &Op<P::Value>)> = self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| match slot {
                    Slot::Running { proc, pending } => Some((
                        ProcessId(i),
                        proc,
                        pending.as_ref().expect("running process has a pending op"),
                    )),
                    _ => None,
                })
                .collect();
            let pid = chooser(AdaptiveView {
                live: &live,
                memory: &self.memory,
            });
            assert!(
                matches!(self.slots.get(pid.index()), Some(Slot::Running { .. })),
                "adaptive adversary chose non-live {pid}"
            );
            let mut noop = NoopSchedule;
            self.advance(pid, &mut noop);
        };
        self.into_report(reason)
    }

    /// Runs to completion under `schedule` and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the schedule yields a process id out of range.
    pub fn run(mut self, mut schedule: impl Schedule) -> RunReport<P> {
        let support = schedule.support();
        let support_total = support.len();
        let mut support_done = support
            .iter()
            .filter(|pid| matches!(self.slots[pid.index()], Slot::Done { .. }))
            .count();
        // Tell the schedule about processes that finished without taking
        // any steps (their first `step(None)` returned `Done`).
        for (i, slot) in self.slots.iter().enumerate() {
            if matches!(slot, Slot::Done { .. }) {
                schedule.on_done(ProcessId(i));
            }
        }

        let mut in_support = vec![false; self.slots.len()];
        for pid in &support {
            in_support[pid.index()] = true;
        }

        let reason = loop {
            if self.live == 0 || (support_total > 0 && support_done == support_total) {
                break StopReason::AllDone;
            }
            if self.metrics.total_ops + self.metrics.skipped_slots >= self.slot_limit {
                break StopReason::SlotLimit;
            }
            match schedule.next_pid() {
                None => break StopReason::ScheduleExhausted,
                Some(pid) => {
                    assert!(
                        pid.index() < self.slots.len(),
                        "schedule produced out-of-range {pid}"
                    );
                    let finished = self.advance(pid, &mut schedule);
                    if finished && (support_total == 0 || in_support[pid.index()]) {
                        support_done += 1;
                    }
                }
            }
        };

        self.into_report(reason)
    }

    fn into_report(self, reason: StopReason) -> RunReport<P> {
        let mut outputs = Vec::with_capacity(self.slots.len());
        let mut processes = Vec::with_capacity(self.slots.len());
        for slot in self.slots {
            match slot {
                Slot::Running { proc, .. } => {
                    outputs.push(None);
                    processes.push(proc);
                }
                Slot::Done { proc, output } => {
                    outputs.push(Some(output));
                    processes.push(proc);
                }
                Slot::Vacant => unreachable!("vacant slot after run"),
            }
        }

        RunReport {
            outputs,
            processes,
            metrics: self.metrics,
            memory: self.memory,
            trace: self.trace,
            ring: self.ring,
            stop_reason: reason,
        }
    }
}

/// What an adaptive adversary sees before choosing the next step: every
/// live process (with its internal state and pending operation) and the
/// shared memory.
pub struct AdaptiveView<'a, P: Process> {
    /// Live processes: id, state machine, and the operation each will
    /// execute when scheduled.
    pub live: &'a [(ProcessId, &'a P, &'a Op<P::Value>)],
    /// Read access to the shared memory contents.
    pub memory: &'a Memory<P::Value>,
}

/// Internal placeholder schedule for adaptive runs (completion
/// notifications are dropped).
struct NoopSchedule;

impl Schedule for NoopSchedule {
    fn next_pid(&mut self) -> Option<ProcessId> {
        unreachable!("adaptive runs do not pull from a schedule")
    }
}

/// Everything known after a run.
#[derive(Debug)]
pub struct RunReport<P: Process> {
    /// Per-process output; `None` if the process never finished (crashed
    /// or starved by a finite schedule).
    pub outputs: Vec<Option<P::Output>>,
    /// The (final-state) process state machines, for post-hoc probes.
    pub processes: Vec<P>,
    /// Step accounting.
    pub metrics: Metrics,
    /// Final memory state, for assertions on shared objects.
    pub memory: Memory<P::Value>,
    /// The execution trace, if recording was enabled.
    pub trace: Option<Trace>,
    /// The bounded step-event ring, if enabled (see
    /// [`Engine::enable_trace_ring`]).
    pub ring: Option<RingSink>,
    /// Why the run ended.
    pub stop_reason: StopReason,
}

impl<P: Process> RunReport<P> {
    /// Returns `true` if every process produced an output.
    pub fn all_decided(&self) -> bool {
        self.outputs.iter().all(Option::is_some)
    }

    /// Iterates over the outputs of processes that finished.
    pub fn decided(&self) -> impl Iterator<Item = &P::Output> {
        self.outputs.iter().filter_map(Option::as_ref)
    }

    /// Unwraps all outputs.
    ///
    /// # Panics
    ///
    /// Panics if any process did not finish.
    pub fn unwrap_outputs(self) -> Vec<P::Output> {
        self.outputs
            .into_iter()
            .map(|o| o.expect("process did not finish"))
            .collect()
    }
}

impl<P: Process> RunReport<P>
where
    P::Output: PartialEq,
{
    /// Returns `true` if all *decided* outputs are equal (vacuously true
    /// when fewer than two processes decided).
    pub fn outputs_agree(&self) -> bool {
        let mut decided = self.decided();
        match decided.next() {
            None => true,
            Some(first) => decided.all(|o| o == first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RegisterId;
    use crate::layout::LayoutBuilder;
    use crate::op::OpResult;
    use crate::schedule::{FixedSchedule, RoundRobin};

    /// Writes `input` to the register, reads it back, returns what it saw.
    struct WriteRead {
        reg: RegisterId,
        input: u32,
        phase: u8,
    }

    impl WriteRead {
        fn new(reg: RegisterId, input: u32) -> Self {
            Self {
                reg,
                input,
                phase: 0,
            }
        }
    }

    impl Process for WriteRead {
        type Value = u32;
        type Output = u32;

        fn step(&mut self, prev: Option<OpResult<u32>>) -> Step<u32, u32> {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::Issue(Op::RegisterWrite(self.reg, self.input))
                }
                1 => {
                    self.phase = 2;
                    Step::Issue(Op::RegisterRead(self.reg))
                }
                _ => Step::Done(prev.unwrap().expect_register().unwrap()),
            }
        }
    }

    fn one_register() -> (crate::layout::Layout, RegisterId) {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        (b.build(), r)
    }

    #[test]
    fn round_robin_interleaves_atomically() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let report = Engine::new(&layout, procs).run(RoundRobin::new(2));
        // Slots: p0 writes 1, p1 writes 2, p0 reads (sees 2), p1 reads (2).
        assert_eq!(report.outputs, vec![Some(2), Some(2)]);
        assert_eq!(report.metrics.total_steps, 4);
        assert_eq!(report.stop_reason, StopReason::AllDone);
        assert!(report.all_decided());
        assert!(report.outputs_agree());
    }

    #[test]
    fn fixed_schedule_controls_interleaving() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        // p0 runs solo first: sees its own write.
        let report = Engine::new(&layout, procs).run(FixedSchedule::from_indices([0, 0, 1, 1]));
        assert_eq!(report.outputs, vec![Some(1), Some(2)]);
        assert!(!report.outputs_agree());
    }

    #[test]
    fn finite_schedule_leaves_pending() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let report = Engine::new(&layout, procs).run(FixedSchedule::from_indices([0]));
        assert_eq!(report.stop_reason, StopReason::ScheduleExhausted);
        assert_eq!(report.outputs, vec![None, None]);
        assert!(!report.all_decided());
        assert!(report.outputs_agree(), "vacuous agreement with no outputs");
    }

    #[test]
    fn slot_limit_stops_run() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let mut engine = Engine::new(&layout, procs);
        engine.limit_slots(3);
        let report = engine.run(RoundRobin::new(2));
        assert_eq!(report.stop_reason, StopReason::SlotLimit);
        assert_eq!(report.metrics.total_ops, 3);
    }

    #[test]
    fn skips_finished_processes_for_free() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        // p0 finishes after two ops; its two extra slots are skipped and
        // not charged while p1 is still running.
        let report =
            Engine::new(&layout, procs).run(FixedSchedule::from_indices([0, 0, 0, 0, 1, 1]));
        assert_eq!(report.metrics.total_ops, 4);
        assert_eq!(report.metrics.skipped_slots, 2);
        assert_eq!(report.outputs, vec![Some(1), Some(2)]);
        assert_eq!(report.stop_reason, StopReason::AllDone);
    }

    #[test]
    fn immediately_done_process_costs_nothing() {
        struct Instant;
        impl Process for Instant {
            type Value = u32;
            type Output = u8;
            fn step(&mut self, _prev: Option<OpResult<u32>>) -> Step<u32, u8> {
                Step::Done(7)
            }
        }
        let (layout, _r) = one_register();
        let report = Engine::new(&layout, vec![Instant]).run(RoundRobin::new(1));
        assert_eq!(report.outputs, vec![Some(7)]);
        assert_eq!(report.metrics.total_steps, 0);
        assert_eq!(report.stop_reason, StopReason::AllDone);
    }

    #[test]
    fn trace_records_charged_ops() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let mut engine = Engine::new(&layout, procs);
        engine.enable_trace();
        let report = engine.run(RoundRobin::new(2));
        let trace = report.trace.expect("trace enabled");
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.by_process(ProcessId(0)).count(), 2);
    }

    #[test]
    fn trace_ring_keeps_last_events_at_fixed_cost() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let mut engine = Engine::new(&layout, procs);
        engine.enable_trace_ring(2);
        let report = engine.run(RoundRobin::new(2));
        let ring = report.ring.expect("ring enabled");
        assert_eq!(ring.total_pushed(), 4);
        assert_eq!(ring.dropped(), 2);
        // The last two charged slots are the two reads.
        let slots: Vec<u64> = ring.events().map(|e| e.slot).collect();
        assert_eq!(slots, vec![2, 3]);
        assert!(ring
            .events()
            .all(|e| e.kind == crate::op::OpKind::RegisterRead));
    }

    #[test]
    fn unwrap_outputs_returns_all() {
        let (layout, r) = one_register();
        let report = Engine::new(&layout, vec![WriteRead::new(r, 9)]).run(RoundRobin::new(1));
        assert_eq!(report.unwrap_outputs(), vec![9]);
    }

    #[test]
    fn adaptive_run_with_lowest_id_chooser_matches_blocks() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let report = Engine::new(&layout, procs)
            .run_adaptive(|view| view.live.iter().map(|(pid, _, _)| *pid).min().unwrap());
        // Lowest-live-id scheduling is exactly block-sequential order.
        assert_eq!(report.outputs, vec![Some(1), Some(2)]);
        assert_eq!(report.metrics.total_steps, 4);
        assert_eq!(report.stop_reason, StopReason::AllDone);
    }

    #[test]
    fn adaptive_chooser_sees_pending_ops_and_memory() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 7), WriteRead::new(r, 8)];
        let mut saw_write = false;
        let mut saw_read = false;
        let report = Engine::new(&layout, procs).run_adaptive(|view| {
            for (_, _, op) in view.live {
                match op {
                    Op::RegisterWrite(_, _) => saw_write = true,
                    Op::RegisterRead(_) => saw_read = true,
                    _ => {}
                }
            }
            let _ = view.memory.peek_register(r);
            view.live.iter().map(|(pid, _, _)| *pid).max().unwrap()
        });
        assert!(
            saw_write && saw_read,
            "adversary observes pending operations"
        );
        assert!(report.all_decided());
    }

    #[test]
    fn adaptive_run_respects_slot_limit() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let mut engine = Engine::new(&layout, procs);
        engine.limit_slots(3);
        let report = engine.run_adaptive(|view| view.live[0].0);
        assert_eq!(report.stop_reason, StopReason::SlotLimit);
        assert_eq!(report.metrics.total_ops, 3);
    }

    #[test]
    #[should_panic(expected = "non-live")]
    fn adaptive_chooser_cannot_pick_finished_process() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let _ = Engine::new(&layout, procs).run_adaptive(|_| ProcessId(0));
        // p0 finishes after two of its own steps; choosing it again panics.
    }

    #[test]
    #[should_panic(expected = "did not finish")]
    fn unwrap_outputs_panics_on_pending() {
        let (layout, r) = one_register();
        let report =
            Engine::new(&layout, vec![WriteRead::new(r, 9)]).run(FixedSchedule::from_indices([0]));
        let _ = report.unwrap_outputs();
    }
}

//! The execution engine: a discrete-event core driving process state
//! machines under an oblivious-adversary schedule against simulated
//! shared memory.
//!
//! Semantics (matching §1.1 of the paper):
//!
//! * At each schedule slot, the scheduled process executes exactly one
//!   shared-memory operation (atomically).
//! * Slots given to a finished process are free no-ops.
//! * The run ends when every process in the schedule's support has
//!   finished, when the schedule is exhausted, or when an explicit slot
//!   limit is reached.
//!
//! Local computation between operations is free: the engine resumes the
//! state machine with the operation's result immediately after executing
//! it, so the *next* operation is ready for the process's next slot, and
//! a process whose final operation completes needs no extra slot to
//! return its output.
//!
//! ## The event core
//!
//! Internally the engine treats the schedule as an event stream: slots
//! are prefetched in flat buckets (a calendar queue keyed by schedule
//! position, [`event::SlotQueue`](crate::event)) whenever the schedule
//! declares itself
//! [`completion_oblivious`](crate::schedule::Schedule::completion_oblivious),
//! and process state machines live in an arena addressed through a
//! dense `ProcessId → slot` table
//! ([`event::ProcessTable`](crate::event)). With
//! [`Engine::lazy`], processes (and, via the paged
//! [`Memory`](crate::memory::Memory), their registers) materialize on
//! first touch: a schedule that only ever exercises 100 of a million
//! declared processes allocates proportionally to those 100. The
//! pre-refactor per-step loop survives as
//! [`LegacyEngine`](crate::legacy::LegacyEngine), and the regression
//! suite holds the two bit-identical on every shipped schedule family.

use crate::event::{ProcessTable, SlotQueue, Touched};
use crate::ids::ProcessId;
use crate::layout::Layout;
use crate::memory::{Memory, RegisterSemantics};
use crate::metrics::Metrics;
use crate::obs::RingSink;
use crate::op::Op;
use crate::process::Process;
use crate::schedule::Schedule;
use crate::trace::{Trace, TraceEvent};

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every process in the schedule's support finished.
    AllDone,
    /// The schedule produced no more slots.
    ScheduleExhausted,
    /// The configured slot limit was reached.
    SlotLimit,
}

/// The engine owning memory, processes, and accounting for one run.
///
/// # Examples
///
/// ```
/// use sift_sim::{Engine, LayoutBuilder, Op, OpResult, Process, RegisterId, Step};
/// use sift_sim::schedule::RoundRobin;
///
/// struct WriteOnce(RegisterId, u32, bool);
/// impl Process for WriteOnce {
///     type Value = u32;
///     type Output = u32;
///     fn step(&mut self, _prev: Option<OpResult<u32>>) -> Step<u32, u32> {
///         if self.2 {
///             Step::Done(self.1)
///         } else {
///             self.2 = true;
///             Step::Issue(Op::RegisterWrite(self.0, self.1))
///         }
///     }
/// }
///
/// let mut b = LayoutBuilder::new();
/// let r = b.register();
/// let layout = b.build();
/// let procs = vec![WriteOnce(r, 10, false), WriteOnce(r, 20, false)];
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(2));
/// assert_eq!(report.outputs, vec![Some(10), Some(20)]);
/// assert_eq!(report.metrics.total_steps, 2);
/// ```
pub struct Engine<P: Process> {
    memory: Memory<P::Value>,
    table: ProcessTable<P>,
    metrics: Metrics,
    trace: Option<Trace>,
    ring: Option<RingSink>,
    slot_limit: u64,
    /// Per-slot reader epochs: the memory op-clock value when the slot's
    /// process last executed an operation (0 before its first). Indexed
    /// by slot (touch order), so it grows with the materialized set and
    /// preserves the lazy O(touched) allocation guarantee. Only the
    /// regular-register semantics consult it.
    epochs: Vec<u64>,
}

impl<P: Process> Engine<P> {
    /// Creates an engine over fresh unit-cost memory for `layout`.
    pub fn new(layout: &Layout, processes: Vec<P>) -> Self {
        Self::with_memory(Memory::new(layout), processes)
    }

    /// Creates an engine over explicitly constructed memory (e.g. with a
    /// non-default [`CostModel`](crate::memory::CostModel)).
    pub fn with_memory(memory: Memory<P::Value>, processes: Vec<P>) -> Self {
        let n = processes.len();
        Self {
            memory,
            table: ProcessTable::eager(processes),
            metrics: Metrics::new(n),
            trace: None,
            ring: None,
            slot_limit: u64::MAX,
            epochs: Vec::new(),
        }
    }

    /// Creates a **lazily materializing** engine over `n` processes:
    /// `factory(pid)` builds a process the first time the schedule
    /// touches it, and processes never touched cost four bytes of
    /// index space. Combined with the paged [`Memory`], building an
    /// engine for `n = 10^6` and running a 100-process schedule
    /// allocates proportionally to the 100 touched processes.
    ///
    /// Semantics differ from the eager constructor in exactly one
    /// place: a process whose first step returns `Done` without issuing
    /// any operation announces its completion
    /// ([`Schedule::on_done`]) at its first scheduled slot (which is
    /// charged as a free skip) instead of before the run — an untouched
    /// process cannot be observed at all. Use [`Engine::run_sparse`] to
    /// keep the report proportional to the touched set; [`Engine::run`]
    /// materializes the remainder at report time to stay dense.
    pub fn lazy(layout: &Layout, n: usize, factory: impl FnMut(ProcessId) -> P + 'static) -> Self {
        Self::lazy_with_memory(Memory::new(layout), n, factory)
    }

    /// [`Engine::lazy`] over explicitly constructed memory.
    pub fn lazy_with_memory(
        memory: Memory<P::Value>,
        n: usize,
        factory: impl FnMut(ProcessId) -> P + 'static,
    ) -> Self {
        Self {
            memory,
            table: ProcessTable::lazy(n, Box::new(factory)),
            metrics: Metrics::new(0),
            trace: None,
            ring: None,
            slot_limit: u64::MAX,
            epochs: Vec::new(),
        }
    }

    /// Enables trace recording (off by default; traces can be large).
    pub fn enable_trace(&mut self) -> &mut Self {
        self.trace = Some(Trace::new());
        self
    }

    /// Enables the bounded step-event ring: the last `capacity` charged
    /// operations are retained in [`RunReport::ring`], at fixed memory
    /// cost regardless of run length (unlike [`enable_trace`]
    /// (Self::enable_trace), which keeps everything). Both sinks can be
    /// on at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace_ring(&mut self, capacity: usize) -> &mut Self {
        self.ring = Some(RingSink::new(capacity));
        self
    }

    /// Caps the number of *charged* slots; the run stops with
    /// [`StopReason::SlotLimit`] when reached. Useful for protocols with
    /// unbounded worst cases (e.g. Chor–Israeli–Li). Accounting
    /// saturates, so a budget hit mid-round at any scale is a clean
    /// stop, never an overflow.
    pub fn limit_slots(&mut self, limit: u64) -> &mut Self {
        self.slot_limit = limit;
        self
    }

    /// Switches the register semantics of this engine's memory (atomic
    /// by default; see
    /// [`RegisterSemantics`](crate::memory::RegisterSemantics)). Under
    /// regular semantics, a register read by a process whose previous
    /// step preceded the latest write to that register resolves old or
    /// new per the configured resolution — the simulator-side model of
    /// a non-atomic register substrate.
    pub fn set_register_semantics(&mut self, semantics: RegisterSemantics) -> &mut Self {
        self.memory.set_semantics(semantics);
        self
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.table.n()
    }

    /// Number of processes materialized so far — an allocation probe
    /// for the lazy-engine guarantee (equals
    /// [`process_count`](Self::process_count) for eager engines).
    pub fn materialized_count(&self) -> usize {
        self.table.materialized()
    }

    fn advance(&mut self, pid: ProcessId, slot: usize, schedule: &mut impl Schedule) -> bool {
        let op = self.table.take_pending(slot);
        let kind = op.kind();
        let cost = self.memory.cost(&op);
        let epoch = self.epochs.get(slot).copied().unwrap_or(0);
        let result = self.memory.execute_for(op, epoch);
        if self.epochs.len() <= slot {
            self.epochs.resize(slot + 1, 0);
        }
        self.epochs[slot] = self.memory.ops_executed();
        let event = TraceEvent {
            slot: self.metrics.total_ops,
            pid,
            kind,
        };
        if let Some(trace) = &mut self.trace {
            trace.push(event);
        }
        if let Some(ring) = &mut self.ring {
            ring.push(event);
        }
        self.metrics.record(pid.index(), kind, cost);

        let finished = self.table.resume(slot, result);
        if finished {
            schedule.on_done(pid);
        }
        finished
    }

    /// Runs under an **adaptive adversary**: before every step,
    /// `chooser` inspects the live processes — including their internal
    /// state and, crucially, the operation each is about to perform —
    /// plus the full memory contents, and picks who moves next.
    ///
    /// This is precisely the power the oblivious adversary is denied
    /// (§1.1), provided to quantify the gap: the paper's conciliators
    /// lose their agreement guarantees against it (experiment E20),
    /// which is why `Ω(n²)` total work is needed in the adaptive model
    /// (Attiya–Censor).
    ///
    /// The run ends when all processes finish or the slot limit is
    /// reached.
    ///
    /// # Panics
    ///
    /// Panics if `chooser` returns an id that is out of range or
    /// already finished, or if the engine was built with
    /// [`Engine::lazy`] (an adaptive adversary must see every live
    /// process, so all of them have to exist).
    pub fn run_adaptive(
        mut self,
        mut chooser: impl FnMut(AdaptiveView<'_, P>) -> ProcessId,
    ) -> RunReport<P> {
        assert!(
            !self.table.is_lazy(),
            "adaptive runs require an eager engine: the adversary inspects every live process"
        );
        let reason = loop {
            if self.table.live() == 0 {
                break StopReason::AllDone;
            }
            if self.metrics.scheduled_slots() >= self.slot_limit {
                break StopReason::SlotLimit;
            }
            let live = self.table.live_view();
            let pid = chooser(AdaptiveView {
                live: &live,
                memory: &self.memory,
            });
            drop(live);
            let slot = self.table.running_slot(pid);
            let slot = slot.unwrap_or_else(|| panic!("adaptive adversary chose non-live {pid}"));
            let mut noop = NoopSchedule;
            self.advance(pid, slot, &mut noop);
        };
        self.into_report(reason)
    }

    /// Runs to completion under `schedule` and returns the dense,
    /// pid-indexed report. A lazy engine materializes its untouched
    /// processes at report time; use [`run_sparse`](Self::run_sparse)
    /// to keep the report proportional to the touched set.
    ///
    /// # Panics
    ///
    /// Panics if the schedule yields a process id out of range.
    pub fn run(mut self, schedule: impl Schedule) -> RunReport<P> {
        let reason = self.run_inner(schedule);
        self.into_report(reason)
    }

    /// Runs to completion under `schedule` and reports **only the
    /// touched processes**, in touch order. This is the scale path: a
    /// lazy million-process engine driven by a finite schedule returns
    /// a report proportional to the processes the schedule exercised.
    ///
    /// # Panics
    ///
    /// Panics if the schedule yields a process id out of range.
    pub fn run_sparse(mut self, schedule: impl Schedule) -> SparseReport<P> {
        let reason = self.run_inner(schedule);
        let process_count = self.table.n();
        let entries = self
            .table
            .into_entries()
            .into_iter()
            .map(|(pid, process, output)| SparseEntry {
                pid,
                process,
                output,
            })
            .collect();
        SparseReport {
            process_count,
            entries,
            metrics: self.metrics,
            memory: self.memory,
            trace: self.trace,
            ring: self.ring,
            stop_reason: reason,
        }
    }

    fn run_inner(&mut self, mut schedule: impl Schedule) -> StopReason {
        let support = schedule.support();
        let support_total = support.len();
        // Legacy order: count finished support members, then tell the
        // schedule about every process that finished without taking any
        // steps (their first `step(None)` returned `Done`). A lazy
        // table has materialized nothing yet, so these loops see only
        // eagerly built processes.
        let mut support_done = support
            .iter()
            .filter(|pid| self.table.is_pid_done(**pid))
            .count();
        let done_at_start: Vec<ProcessId> = self
            .table
            .slots()
            .filter(|&(slot, _)| self.table.is_done(slot))
            .map(|(_, pid)| pid)
            .collect();
        for pid in done_at_start {
            schedule.on_done(pid);
        }

        let mut in_support = crate::event::BitSet::new(self.table.n());
        for pid in &support {
            in_support.set(pid.index());
        }

        let mut queue = SlotQueue::new(schedule.completion_oblivious());
        loop {
            if self.table.all_done() || (support_total > 0 && support_done == support_total) {
                break StopReason::AllDone;
            }
            if self.metrics.scheduled_slots() >= self.slot_limit {
                break StopReason::SlotLimit;
            }
            let Some(pid) = queue.pop(&mut schedule) else {
                break StopReason::ScheduleExhausted;
            };
            let Touched {
                slot,
                instantly_done,
            } = self.table.touch(pid);
            if instantly_done {
                // First touch materialized a process that finished
                // without issuing any operation: the slot is a free
                // skip, and the completion notification that eager
                // construction would have delivered before the run
                // fires now.
                self.metrics.record_skip();
                schedule.on_done(pid);
                if support_total == 0 || in_support.get(pid.index()) {
                    support_done += 1;
                }
                continue;
            }
            if self.table.is_done(slot) {
                self.metrics.record_skip();
                continue;
            }
            let finished = self.advance(pid, slot, &mut schedule);
            if finished && (support_total == 0 || in_support.get(pid.index())) {
                support_done += 1;
            }
        }
    }

    fn into_report(mut self, reason: StopReason) -> RunReport<P> {
        let n = self.table.n();
        // A lazy run materializes its untouched remainder now (in pid
        // order, deterministically) so the report stays dense; their
        // pending first operations were never executed, exactly like a
        // never-scheduled process under the legacy engine.
        for i in 0..n {
            let _ = self.table.touch(ProcessId(i));
        }
        // Dense reports expose per-process metrics for every pid.
        self.metrics.pad_processes(n);

        let mut outputs: Vec<Option<P::Output>> = std::iter::repeat_with(|| None).take(n).collect();
        let mut processes: Vec<Option<P>> = std::iter::repeat_with(|| None).take(n).collect();
        for (pid, proc, output) in self.table.into_entries() {
            outputs[pid.index()] = output;
            processes[pid.index()] = Some(proc);
        }

        RunReport {
            outputs,
            processes: processes
                .into_iter()
                .map(|p| p.expect("every pid materialized above"))
                .collect(),
            metrics: self.metrics,
            memory: self.memory,
            trace: self.trace,
            ring: self.ring,
            stop_reason: reason,
        }
    }
}

/// What an adaptive adversary sees before choosing the next step: every
/// live process (with its internal state and pending operation) and the
/// shared memory.
pub struct AdaptiveView<'a, P: Process> {
    /// Live processes: id, state machine, and the operation each will
    /// execute when scheduled.
    pub live: &'a [(ProcessId, &'a P, &'a Op<P::Value>)],
    /// Read access to the shared memory contents.
    pub memory: &'a Memory<P::Value>,
}

/// Internal placeholder schedule for adaptive runs (completion
/// notifications are dropped).
struct NoopSchedule;

impl Schedule for NoopSchedule {
    fn next_pid(&mut self) -> Option<ProcessId> {
        unreachable!("adaptive runs do not pull from a schedule")
    }
}

/// Everything known after a run.
#[derive(Debug)]
pub struct RunReport<P: Process> {
    /// Per-process output; `None` if the process never finished (crashed
    /// or starved by a finite schedule).
    pub outputs: Vec<Option<P::Output>>,
    /// The (final-state) process state machines, for post-hoc probes.
    pub processes: Vec<P>,
    /// Step accounting.
    pub metrics: Metrics,
    /// Final memory state, for assertions on shared objects.
    pub memory: Memory<P::Value>,
    /// The execution trace, if recording was enabled.
    pub trace: Option<Trace>,
    /// The bounded step-event ring, if enabled (see
    /// [`Engine::enable_trace_ring`]).
    pub ring: Option<RingSink>,
    /// Why the run ended.
    pub stop_reason: StopReason,
}

impl<P: Process> RunReport<P> {
    /// Returns `true` if every process produced an output.
    pub fn all_decided(&self) -> bool {
        self.outputs.iter().all(Option::is_some)
    }

    /// Iterates over the outputs of processes that finished.
    pub fn decided(&self) -> impl Iterator<Item = &P::Output> {
        self.outputs.iter().filter_map(Option::as_ref)
    }

    /// Unwraps all outputs.
    ///
    /// # Panics
    ///
    /// Panics if any process did not finish.
    pub fn unwrap_outputs(self) -> Vec<P::Output> {
        self.outputs
            .into_iter()
            .map(|o| o.expect("process did not finish"))
            .collect()
    }
}

impl<P: Process> RunReport<P>
where
    P::Output: PartialEq,
{
    /// Returns `true` if all *decided* outputs are equal (vacuously true
    /// when fewer than two processes decided).
    pub fn outputs_agree(&self) -> bool {
        let mut decided = self.decided();
        match decided.next() {
            None => true,
            Some(first) => decided.all(|o| o == first),
        }
    }
}

/// One touched process in a [`SparseReport`].
#[derive(Debug)]
pub struct SparseEntry<P: Process> {
    /// The process id.
    pub pid: ProcessId,
    /// The (final-state) state machine.
    pub process: P,
    /// Its output, if it finished.
    pub output: Option<P::Output>,
}

/// The report of [`Engine::run_sparse`]: everything known after a run,
/// sized by the *touched* process set rather than the declared one.
pub struct SparseReport<P: Process> {
    /// Declared process count (touched or not).
    pub process_count: usize,
    /// Touched processes in touch order.
    pub entries: Vec<SparseEntry<P>>,
    /// Step accounting (per-process vectors cover pids up to the
    /// highest touched).
    pub metrics: Metrics,
    /// Final memory state.
    pub memory: Memory<P::Value>,
    /// The execution trace, if recording was enabled.
    pub trace: Option<Trace>,
    /// The bounded step-event ring, if enabled.
    pub ring: Option<RingSink>,
    /// Why the run ended.
    pub stop_reason: StopReason,
}

impl<P: Process> SparseReport<P> {
    /// Number of processes the schedule touched.
    pub fn touched_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(pid, output)` of touched processes that
    /// finished.
    pub fn decided(&self) -> impl Iterator<Item = (ProcessId, &P::Output)> {
        self.entries
            .iter()
            .filter_map(|e| e.output.as_ref().map(|o| (e.pid, o)))
    }
}

impl<P: Process> SparseReport<P>
where
    P::Output: PartialEq,
{
    /// Returns `true` if all decided outputs are equal (vacuously true
    /// when fewer than two touched processes decided).
    pub fn outputs_agree(&self) -> bool {
        let mut decided = self.decided().map(|(_, o)| o);
        match decided.next() {
            None => true,
            Some(first) => decided.all(|o| o == first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RegisterId;
    use crate::layout::LayoutBuilder;
    use crate::op::OpResult;
    use crate::process::Step;
    use crate::schedule::{FixedSchedule, RoundRobin};

    /// Writes `input` to the register, reads it back, returns what it saw.
    struct WriteRead {
        reg: RegisterId,
        input: u32,
        phase: u8,
    }

    impl WriteRead {
        fn new(reg: RegisterId, input: u32) -> Self {
            Self {
                reg,
                input,
                phase: 0,
            }
        }
    }

    impl Process for WriteRead {
        type Value = u32;
        type Output = u32;

        fn step(&mut self, prev: Option<OpResult<u32>>) -> Step<u32, u32> {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::Issue(Op::RegisterWrite(self.reg, self.input))
                }
                1 => {
                    self.phase = 2;
                    Step::Issue(Op::RegisterRead(self.reg))
                }
                _ => Step::Done(prev.unwrap().expect_register().unwrap()),
            }
        }
    }

    fn one_register() -> (crate::layout::Layout, RegisterId) {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        (b.build(), r)
    }

    #[test]
    fn round_robin_interleaves_atomically() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let report = Engine::new(&layout, procs).run(RoundRobin::new(2));
        // Slots: p0 writes 1, p1 writes 2, p0 reads (sees 2), p1 reads (2).
        assert_eq!(report.outputs, vec![Some(2), Some(2)]);
        assert_eq!(report.metrics.total_steps, 4);
        assert_eq!(report.stop_reason, StopReason::AllDone);
        assert!(report.all_decided());
        assert!(report.outputs_agree());
    }

    #[test]
    fn fixed_schedule_controls_interleaving() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        // p0 runs solo first: sees its own write.
        let report = Engine::new(&layout, procs).run(FixedSchedule::from_indices([0, 0, 1, 1]));
        assert_eq!(report.outputs, vec![Some(1), Some(2)]);
        assert!(!report.outputs_agree());
    }

    #[test]
    fn finite_schedule_leaves_pending() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let report = Engine::new(&layout, procs).run(FixedSchedule::from_indices([0]));
        assert_eq!(report.stop_reason, StopReason::ScheduleExhausted);
        assert_eq!(report.outputs, vec![None, None]);
        assert!(!report.all_decided());
        assert!(report.outputs_agree(), "vacuous agreement with no outputs");
    }

    #[test]
    fn slot_limit_stops_run() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let mut engine = Engine::new(&layout, procs);
        engine.limit_slots(3);
        let report = engine.run(RoundRobin::new(2));
        assert_eq!(report.stop_reason, StopReason::SlotLimit);
        assert_eq!(report.metrics.total_ops, 3);
    }

    #[test]
    fn skips_finished_processes_for_free() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        // p0 finishes after two ops; its two extra slots are skipped and
        // not charged while p1 is still running.
        let report =
            Engine::new(&layout, procs).run(FixedSchedule::from_indices([0, 0, 0, 0, 1, 1]));
        assert_eq!(report.metrics.total_ops, 4);
        assert_eq!(report.metrics.skipped_slots, 2);
        assert_eq!(report.outputs, vec![Some(1), Some(2)]);
        assert_eq!(report.stop_reason, StopReason::AllDone);
    }

    #[test]
    fn immediately_done_process_costs_nothing() {
        struct Instant;
        impl Process for Instant {
            type Value = u32;
            type Output = u8;
            fn step(&mut self, _prev: Option<OpResult<u32>>) -> Step<u32, u8> {
                Step::Done(7)
            }
        }
        let (layout, _r) = one_register();
        let report = Engine::new(&layout, vec![Instant]).run(RoundRobin::new(1));
        assert_eq!(report.outputs, vec![Some(7)]);
        assert_eq!(report.metrics.total_steps, 0);
        assert_eq!(report.stop_reason, StopReason::AllDone);
    }

    #[test]
    fn trace_records_charged_ops() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let mut engine = Engine::new(&layout, procs);
        engine.enable_trace();
        let report = engine.run(RoundRobin::new(2));
        let trace = report.trace.expect("trace enabled");
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.by_process(ProcessId(0)).count(), 2);
    }

    #[test]
    fn trace_ring_keeps_last_events_at_fixed_cost() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let mut engine = Engine::new(&layout, procs);
        engine.enable_trace_ring(2);
        let report = engine.run(RoundRobin::new(2));
        let ring = report.ring.expect("ring enabled");
        assert_eq!(ring.total_pushed(), 4);
        assert_eq!(ring.dropped(), 2);
        // The last two charged slots are the two reads.
        let slots: Vec<u64> = ring.events().map(|e| e.slot).collect();
        assert_eq!(slots, vec![2, 3]);
        assert!(ring
            .events()
            .all(|e| e.kind == crate::op::OpKind::RegisterRead));
    }

    #[test]
    fn unwrap_outputs_returns_all() {
        let (layout, r) = one_register();
        let report = Engine::new(&layout, vec![WriteRead::new(r, 9)]).run(RoundRobin::new(1));
        assert_eq!(report.unwrap_outputs(), vec![9]);
    }

    #[test]
    fn adaptive_run_with_lowest_id_chooser_matches_blocks() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let report = Engine::new(&layout, procs)
            .run_adaptive(|view| view.live.iter().map(|(pid, _, _)| *pid).min().unwrap());
        // Lowest-live-id scheduling is exactly block-sequential order.
        assert_eq!(report.outputs, vec![Some(1), Some(2)]);
        assert_eq!(report.metrics.total_steps, 4);
        assert_eq!(report.stop_reason, StopReason::AllDone);
    }

    #[test]
    fn adaptive_chooser_sees_pending_ops_and_memory() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 7), WriteRead::new(r, 8)];
        let mut saw_write = false;
        let mut saw_read = false;
        let report = Engine::new(&layout, procs).run_adaptive(|view| {
            for (_, _, op) in view.live {
                match op {
                    Op::RegisterWrite(_, _) => saw_write = true,
                    Op::RegisterRead(_) => saw_read = true,
                    _ => {}
                }
            }
            let _ = view.memory.peek_register(r);
            view.live.iter().map(|(pid, _, _)| *pid).max().unwrap()
        });
        assert!(
            saw_write && saw_read,
            "adversary observes pending operations"
        );
        assert!(report.all_decided());
    }

    #[test]
    fn adaptive_run_respects_slot_limit() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let mut engine = Engine::new(&layout, procs);
        engine.limit_slots(3);
        let report = engine.run_adaptive(|view| view.live[0].0);
        assert_eq!(report.stop_reason, StopReason::SlotLimit);
        assert_eq!(report.metrics.total_ops, 3);
    }

    #[test]
    #[should_panic(expected = "non-live")]
    fn adaptive_chooser_cannot_pick_finished_process() {
        let (layout, r) = one_register();
        let procs = vec![WriteRead::new(r, 1), WriteRead::new(r, 2)];
        let _ = Engine::new(&layout, procs).run_adaptive(|_| ProcessId(0));
        // p0 finishes after two of its own steps; choosing it again panics.
    }

    #[test]
    #[should_panic(expected = "did not finish")]
    fn unwrap_outputs_panics_on_pending() {
        let (layout, r) = one_register();
        let report =
            Engine::new(&layout, vec![WriteRead::new(r, 9)]).run(FixedSchedule::from_indices([0]));
        let _ = report.unwrap_outputs();
    }

    #[test]
    fn lazy_engine_materializes_only_touched_processes() {
        let (layout, r) = one_register();
        let engine = Engine::lazy(&layout, 1_000_000, move |pid| {
            WriteRead::new(r, pid.index() as u32)
        });
        assert_eq!(engine.process_count(), 1_000_000);
        assert_eq!(engine.materialized_count(), 0);
        // Touch only processes 5 and 17.
        let report = engine.run_sparse(FixedSchedule::from_indices([5, 5, 5, 17, 17, 17]));
        assert_eq!(report.touched_count(), 2);
        assert_eq!(report.process_count, 1_000_000);
        assert_eq!(report.stop_reason, StopReason::ScheduleExhausted);
        let decided: Vec<(ProcessId, u32)> = report.decided().map(|(pid, &o)| (pid, o)).collect();
        assert_eq!(decided, vec![(ProcessId(5), 5), (ProcessId(17), 17)]);
    }

    #[test]
    fn lazy_dense_run_matches_eager_on_full_schedules() {
        let (layout, r) = one_register();
        let eager = Engine::new(&layout, (0..4).map(|i| WriteRead::new(r, i)).collect())
            .run(RoundRobin::new(4));
        let lazy = Engine::lazy(&layout, 4, move |pid| WriteRead::new(r, pid.index() as u32))
            .run(RoundRobin::new(4));
        assert_eq!(eager.outputs, lazy.outputs);
        assert_eq!(eager.metrics, lazy.metrics);
        assert_eq!(eager.stop_reason, lazy.stop_reason);
    }

    #[test]
    fn lazy_dense_report_covers_untouched_processes() {
        let (layout, r) = one_register();
        let report = Engine::lazy(&layout, 6, move |pid| WriteRead::new(r, pid.index() as u32))
            .run(FixedSchedule::from_indices([1, 1, 1]));
        assert_eq!(report.outputs.len(), 6);
        assert_eq!(report.processes.len(), 6);
        assert_eq!(report.outputs[1], Some(1));
        assert!(report
            .outputs
            .iter()
            .enumerate()
            .all(|(i, o)| i == 1 || o.is_none()));
        assert_eq!(report.metrics.per_process_ops.len(), 6);
    }

    #[test]
    fn lazy_instantly_done_process_charges_a_skip_on_first_touch() {
        struct Instant;
        impl Process for Instant {
            type Value = u32;
            type Output = u8;
            fn step(&mut self, _prev: Option<OpResult<u32>>) -> Step<u32, u8> {
                Step::Done(9)
            }
        }
        let (layout, _r) = one_register();
        let report =
            Engine::lazy(&layout, 8, |_| Instant).run_sparse(FixedSchedule::from_indices([3, 3]));
        assert_eq!(report.metrics.skipped_slots, 2);
        assert_eq!(report.metrics.total_ops, 0);
        assert_eq!(report.touched_count(), 1);
        assert_eq!(report.entries[0].output, Some(9));
    }

    #[test]
    fn lazy_run_terminates_when_support_completes() {
        let (layout, r) = one_register();
        // RoundRobin over all 4: support is everyone; the lazy engine
        // must still stop with AllDone once the last one finishes.
        let report = Engine::lazy(&layout, 4, move |pid| WriteRead::new(r, pid.index() as u32))
            .run_sparse(RoundRobin::new(4));
        assert_eq!(report.stop_reason, StopReason::AllDone);
        assert_eq!(report.touched_count(), 4);
        assert!(report.decided().count() == 4);
    }

    #[test]
    #[should_panic(expected = "adaptive runs require an eager engine")]
    fn lazy_adaptive_run_is_rejected() {
        let (layout, r) = one_register();
        let _ = Engine::lazy(&layout, 2, move |pid| WriteRead::new(r, pid.index() as u32))
            .run_adaptive(|view| view.live[0].0);
    }

    #[test]
    fn slot_limit_hit_mid_round_is_a_clean_stop() {
        // The hardening negative test: a budget that lands mid-round at
        // a large-ish n must produce SlotLimit — never a panic or a
        // wrapped counter — and the accounting must equal the budget.
        let n = 1_000;
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let layout = b.build();
        let mut engine = Engine::lazy(&layout, n, move |pid| WriteRead::new(r, pid.index() as u32));
        let limit = (n as u64 * 3) / 2 + 7; // mid second round, odd offset
        engine.limit_slots(limit);
        let report = engine.run_sparse(RoundRobin::new(n));
        assert_eq!(report.stop_reason, StopReason::SlotLimit);
        assert_eq!(report.metrics.scheduled_slots(), limit);
        let undecided = report.entries.iter().filter(|e| e.output.is_none()).count();
        assert!(undecided > 0, "budget landed mid-round");
    }

    #[test]
    fn saturated_slot_accounting_still_stops() {
        // Even a metrics state at the numeric ceiling stops cleanly.
        let (layout, r) = one_register();
        let mut engine = Engine::new(&layout, vec![WriteRead::new(r, 1)]);
        engine.limit_slots(u64::MAX);
        engine.metrics.total_ops = u64::MAX - 1;
        engine.metrics.skipped_slots = u64::MAX - 1;
        let report = engine.run(RoundRobin::new(1));
        assert_eq!(report.stop_reason, StopReason::SlotLimit);
    }
}

//! The value trait bound shared by all memory objects.

use core::fmt;

/// Values storable in simulated shared memory.
///
/// This is a blanket alias: any `Clone + Debug + Send + Sync + 'static`
/// type qualifies, so user code never needs to implement it by hand.
/// Registers are unbounded in the model (§1.1 of the paper), so no size
/// restriction is imposed; cheaply clonable values (indices,
/// `Arc`-backed personae) keep simulations fast.
///
/// # Examples
///
/// ```
/// fn takes_value<V: sift_sim::Value>(_: V) {}
/// takes_value(42u64);
/// takes_value("persona".to_string());
/// ```
pub trait Value: Clone + fmt::Debug + Send + Sync + 'static {}

impl<T: Clone + fmt::Debug + Send + Sync + 'static> Value for T {}

/// Values that pack losslessly into a single machine word.
///
/// A [`Value`] implementing this trait can live in one `AtomicU64`, so
/// shared objects holding it (registers, snapshot components) can be
/// wait-free single-instruction loads and stores instead of pointer
/// publications. Implementations must round-trip exactly
/// (`unpack(v.pack()) == v`) and must keep `pack()` strictly below
/// [`u64::MAX`] — the substrate reserves one bit pattern to encode ⊥.
///
/// The blanket impls cover the word-or-smaller unsigned integers and
/// `bool`; wider or pointer-carrying values take the generic
/// publication path instead.
///
/// # Examples
///
/// ```
/// use sift_sim::PackValue;
/// assert_eq!(u32::unpack(7u32.pack()), 7);
/// assert_eq!(bool::unpack(true.pack()), true);
/// ```
pub trait PackValue: Value + Copy + Eq {
    /// Encodes the value into a word, strictly below `u64::MAX`.
    fn pack(self) -> u64;
    /// Decodes a word produced by [`pack`](PackValue::pack).
    fn unpack(word: u64) -> Self;
}

macro_rules! impl_pack_for_uint {
    ($($t:ty),+) => {$(
        impl PackValue for $t {
            fn pack(self) -> u64 {
                u64::from(self)
            }
            fn unpack(word: u64) -> Self {
                word as $t
            }
        }
    )+};
}

impl_pack_for_uint!(u8, u16, u32);

impl PackValue for bool {
    fn pack(self) -> u64 {
        u64::from(self)
    }
    fn unpack(word: u64) -> Self {
        word != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn assert_value<V: Value>() {}

    #[test]
    fn common_types_are_values() {
        assert_value::<u64>();
        assert_value::<String>();
        assert_value::<Arc<Vec<u8>>>();
        assert_value::<Option<(u64, u32)>>();
    }

    #[test]
    fn pack_round_trips_and_stays_below_max() {
        for v in [0u32, 1, 7, u32::MAX] {
            assert_eq!(u32::unpack(v.pack()), v);
            assert!(v.pack() < u64::MAX);
        }
        for v in [0u16, u16::MAX] {
            assert_eq!(u16::unpack(v.pack()), v);
        }
        for v in [0u8, u8::MAX] {
            assert_eq!(u8::unpack(v.pack()), v);
        }
        assert!(bool::unpack(true.pack()));
        assert!(!bool::unpack(false.pack()));
    }
}

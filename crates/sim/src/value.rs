//! The value trait bound shared by all memory objects.

use core::fmt;

/// Values storable in simulated shared memory.
///
/// This is a blanket alias: any `Clone + Debug + Send + Sync + 'static`
/// type qualifies, so user code never needs to implement it by hand.
/// Registers are unbounded in the model (§1.1 of the paper), so no size
/// restriction is imposed; cheaply clonable values (indices,
/// `Arc`-backed personae) keep simulations fast.
///
/// # Examples
///
/// ```
/// fn takes_value<V: sift_sim::Value>(_: V) {}
/// takes_value(42u64);
/// takes_value("persona".to_string());
/// ```
pub trait Value: Clone + fmt::Debug + Send + Sync + 'static {}

impl<T: Clone + fmt::Debug + Send + Sync + 'static> Value for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn assert_value<V: Value>() {}

    #[test]
    fn common_types_are_values() {
        assert_value::<u64>();
        assert_value::<String>();
        assert_value::<Arc<Vec<u8>>>();
        assert_value::<Option<(u64, u32)>>();
    }
}

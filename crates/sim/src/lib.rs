//! # sift-sim — a deterministic oblivious-adversary shared-memory simulator
//!
//! This crate implements the execution model of Aspnes, *"Faster
//! Randomized Consensus With an Oblivious Adversary"* (PODC 2012), §1.1:
//! `n` asynchronous processes communicate through atomic shared objects —
//! multi-writer multi-reader registers, snapshot objects, and max
//! registers — while an **oblivious adversary** fixes the schedule of
//! process steps in advance, independently of the processes' coin flips.
//!
//! Protocols are written once as resumable [`Process`] state machines
//! that issue one shared-memory [`Op`] per scheduled step; the
//! [`Engine`] drives them deterministically under any
//! [`Schedule`](schedule::Schedule) and accounts for individual and total
//! step complexity exactly as the paper does (slots given to finished
//! processes are free).
//!
//! ## Example
//!
//! ```
//! use sift_sim::{Engine, LayoutBuilder, Op, OpResult, Process, RegisterId, Step};
//! use sift_sim::schedule::RoundRobin;
//!
//! /// Each process writes its id and returns the last value it reads.
//! struct P { reg: RegisterId, id: u32, phase: u8 }
//!
//! impl Process for P {
//!     type Value = u32;
//!     type Output = u32;
//!     fn step(&mut self, prev: Option<OpResult<u32>>) -> Step<u32, u32> {
//!         self.phase += 1;
//!         match self.phase {
//!             1 => Step::Issue(Op::RegisterWrite(self.reg, self.id)),
//!             2 => Step::Issue(Op::RegisterRead(self.reg)),
//!             _ => Step::Done(prev.unwrap().expect_register().unwrap()),
//!         }
//!     }
//! }
//!
//! let mut b = LayoutBuilder::new();
//! let reg = b.register();
//! let layout = b.build();
//! let procs: Vec<P> = (0..4).map(|id| P { reg, id, phase: 0 }).collect();
//! let report = Engine::new(&layout, procs).run(RoundRobin::new(4));
//! assert!(report.all_decided());
//! assert_eq!(report.metrics.total_steps, 8);
//! ```
//!
//! ## Determinism and obliviousness
//!
//! Everything is reproducible from seeds. Use
//! [`SeedSplitter`](rng::SeedSplitter) to derive disjoint randomness
//! streams for the schedule and for each process; because the schedule's
//! stream is fixed before any process stream is consumed, the adversary
//! is oblivious *by construction*.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod engine;
pub mod event;
pub mod explore;
pub mod fuzz;
pub mod ids;
pub mod layout;
pub mod legacy;
pub mod max_register;
pub mod mc;
pub mod memory;
pub mod metrics;
pub mod obs;
pub mod op;
pub mod paged;
pub mod process;
pub mod register;
pub mod rng;
pub mod schedule;
pub mod snapshot;
pub mod trace;
pub mod value;

pub use adversary::{AdversaryStrength, DelayedChooser};
pub use engine::{AdaptiveView, Engine, RunReport, SparseEntry, SparseReport, StopReason};
pub use ids::{MaxRegisterId, ProcessId, RegisterId, SnapshotId};
pub use layout::{Layout, LayoutBuilder, LayoutOffsets};
pub use legacy::LegacyEngine;
pub use memory::{CostModel, Memory, RegisterSemantics, Resolution};
pub use metrics::Metrics;
pub use op::{Op, OpKind, OpResult, ScanView};
pub use process::{Process, Step};
pub use value::{PackValue, Value};

// Compile-time audit that everything a parallel trial executor shares
// across worker threads (layouts, schedules, metrics, seeds) is
// thread-safe. A field that loses `Send`/`Sync` (e.g. an `Rc` or a raw
// pointer) fails the build here, not at a distant use-site.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<Layout>();
    require_send_sync::<LayoutBuilder>();
    require_send_sync::<Metrics>();
    require_send_sync::<schedule::ScheduleKind>();
    require_send_sync::<StopReason>();
    require_send_sync::<rng::SeedSplitter>();
    require_send_sync::<CostModel>();
    require_send_sync::<RegisterSemantics>();
    require_send_sync::<AdversaryStrength>();
};

/// Definition-checked proof that a finished run's report can be sent to
/// the aggregating thread whenever the process type itself can.
#[allow(dead_code)]
fn _run_report_is_send<P>(report: RunReport<P>) -> impl Send
where
    P: Process + Send,
    P::Output: Send,
{
    report
}

//! Exhaustive exploration of all interleavings.
//!
//! Randomized testing samples schedules; for small instances we can do
//! better and enumerate **every** schedule. Given cloneable process
//! state machines, [`explore`] walks the full tree of interleavings
//! (which live process takes the next step) and invokes a visitor on
//! the outputs of every maximal execution — a bounded model check of
//! safety properties such as adopt-commit coherence or consensus
//! agreement.
//!
//! The number of executions of processes taking `s₁, …, s_k` steps is
//! the multinomial `(Σsᵢ)! / Πsᵢ!`, so keep instances tiny (e.g. two
//! 7-step proposers → 3432 executions; three 5-step proposers →
//! 756 756). The `limit` parameter aborts cleanly instead of running
//! forever when an instance is too big.

use crate::layout::Layout;
use crate::memory::Memory;
use crate::op::Op;
use crate::process::{Process, Step};
use crate::value::Value;

/// Error returned when the execution tree exceeds the configured limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManyExecutions {
    /// The limit that was exceeded.
    pub limit: u64,
}

impl std::fmt::Display for TooManyExecutions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "more than {} executions; shrink the instance",
            self.limit
        )
    }
}

impl std::error::Error for TooManyExecutions {}

enum ExpSlot<P: Process> {
    Running { proc: P, pending: Op<P::Value> },
    Done,
}

impl<P: Process + Clone> Clone for ExpSlot<P>
where
    P::Value: Value,
{
    fn clone(&self) -> Self {
        match self {
            ExpSlot::Running { proc, pending } => ExpSlot::Running {
                proc: proc.clone(),
                pending: pending.clone(),
            },
            ExpSlot::Done => ExpSlot::Done,
        }
    }
}

/// Enumerates every interleaving of `processes` over fresh memory for
/// `layout`, calling `visit` with the final outputs of each maximal
/// execution.
///
/// Returns the number of executions visited.
///
/// # Errors
///
/// Returns [`TooManyExecutions`] (after aborting the walk) if more than
/// `limit` executions exist.
///
/// # Examples
///
/// ```
/// use sift_sim::explore::explore;
/// use sift_sim::{LayoutBuilder, Op, OpResult, Process, RegisterId, Step};
///
/// #[derive(Clone)]
/// struct WriteThenRead(RegisterId, u64, u8);
/// impl Process for WriteThenRead {
///     type Value = u64;
///     type Output = Option<u64>;
///     fn step(&mut self, prev: Option<OpResult<u64>>) -> Step<u64, Option<u64>> {
///         self.2 += 1;
///         match self.2 {
///             1 => Step::Issue(Op::RegisterWrite(self.0, self.1)),
///             2 => Step::Issue(Op::RegisterRead(self.0)),
///             _ => Step::Done(prev.unwrap().expect_register()),
///         }
///     }
/// }
///
/// let mut b = LayoutBuilder::new();
/// let r = b.register();
/// let layout = b.build();
/// let procs = vec![WriteThenRead(r, 1, 0), WriteThenRead(r, 2, 0)];
/// let mut executions = 0;
/// let total = explore(&layout, procs, 1_000, &mut |outs| {
///     executions += 1;
///     // Each process reads some process's write (never ⊥).
///     assert!(outs.iter().all(|o| o.unwrap().is_some()));
/// })
/// .unwrap();
/// // Two processes, two ops each: C(4, 2) = 6 interleavings.
/// assert_eq!(total, 6);
/// assert_eq!(executions, 6);
/// ```
pub fn explore<P>(
    layout: &Layout,
    processes: Vec<P>,
    limit: u64,
    visit: &mut impl FnMut(&[Option<P::Output>]),
) -> Result<u64, TooManyExecutions>
where
    P: Process + Clone,
    P::Output: Clone,
{
    let n = processes.len();
    let mut outputs: Vec<Option<P::Output>> = vec![None; n];
    let slots: Vec<ExpSlot<P>> = processes
        .into_iter()
        .enumerate()
        .map(|(i, mut proc)| match proc.step(None) {
            Step::Issue(op) => ExpSlot::Running { proc, pending: op },
            Step::Done(out) => {
                outputs[i] = Some(out);
                ExpSlot::Done
            }
        })
        .collect();
    let memory = Memory::new(layout);
    let mut count = 0u64;
    dfs(memory, slots, outputs, limit, &mut count, visit)?;
    Ok(count)
}

fn dfs<P>(
    memory: Memory<P::Value>,
    slots: Vec<ExpSlot<P>>,
    outputs: Vec<Option<P::Output>>,
    limit: u64,
    count: &mut u64,
    visit: &mut impl FnMut(&[Option<P::Output>]),
) -> Result<(), TooManyExecutions>
where
    P: Process + Clone,
    P::Output: Clone,
{
    let live: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, ExpSlot::Running { .. }))
        .map(|(i, _)| i)
        .collect();
    if live.is_empty() {
        *count += 1;
        if *count > limit {
            return Err(TooManyExecutions { limit });
        }
        visit(&outputs);
        return Ok(());
    }
    for &i in &live {
        let (mut memory, mut slots, mut outputs) = (memory.clone(), slots.clone(), outputs.clone());
        let ExpSlot::Running { mut proc, pending } =
            std::mem::replace(&mut slots[i], ExpSlot::Done)
        else {
            unreachable!("live slot is running");
        };
        let result = memory.execute(pending);
        match proc.step(Some(result)) {
            Step::Issue(op) => slots[i] = ExpSlot::Running { proc, pending: op },
            Step::Done(out) => outputs[i] = Some(out),
        }
        dfs(memory, slots, outputs, limit, count, visit)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RegisterId;
    use crate::layout::LayoutBuilder;
    use crate::op::OpResult;

    #[derive(Clone)]
    struct Steps {
        reg: RegisterId,
        id: u64,
        ops: u32,
        issued: u32,
    }

    impl Process for Steps {
        type Value = u64;
        type Output = u64;

        fn step(&mut self, _prev: Option<OpResult<u64>>) -> Step<u64, u64> {
            if self.issued < self.ops {
                self.issued += 1;
                Step::Issue(Op::RegisterWrite(self.reg, self.id))
            } else {
                Step::Done(self.id)
            }
        }
    }

    fn layout_one() -> (crate::layout::Layout, RegisterId) {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        (b.build(), r)
    }

    #[test]
    fn counts_interleavings_multinomially() {
        // s1 = 2, s2 = 3: C(5, 2) = 10.
        let (layout, r) = layout_one();
        let procs = vec![
            Steps {
                reg: r,
                id: 0,
                ops: 2,
                issued: 0,
            },
            Steps {
                reg: r,
                id: 1,
                ops: 3,
                issued: 0,
            },
        ];
        let total = explore(&layout, procs, 100, &mut |_| {}).unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn three_processes_count() {
        // 2 ops each: 6!/(2!2!2!) = 90.
        let (layout, r) = layout_one();
        let procs: Vec<Steps> = (0..3)
            .map(|id| Steps {
                reg: r,
                id,
                ops: 2,
                issued: 0,
            })
            .collect();
        let total = explore(&layout, procs, 1000, &mut |_| {}).unwrap();
        assert_eq!(total, 90);
    }

    #[test]
    fn limit_is_enforced() {
        let (layout, r) = layout_one();
        let procs = vec![
            Steps {
                reg: r,
                id: 0,
                ops: 5,
                issued: 0,
            },
            Steps {
                reg: r,
                id: 1,
                ops: 5,
                issued: 0,
            },
        ];
        let err = explore(&layout, procs, 10, &mut |_| {}).unwrap_err();
        assert_eq!(err.limit, 10);
        assert!(err.to_string().contains("shrink"));
    }

    #[test]
    fn zero_processes_yield_one_empty_execution() {
        let (layout, _) = layout_one();
        let mut visits = 0;
        let total = explore::<Steps>(&layout, Vec::new(), 10, &mut |outs| {
            visits += 1;
            assert!(outs.is_empty());
        })
        .unwrap();
        assert_eq!(total, 1);
        assert_eq!(visits, 1);
    }

    #[test]
    fn immediately_done_processes_are_visited_once() {
        let (layout, r) = layout_one();
        let procs = vec![Steps {
            reg: r,
            id: 7,
            ops: 0,
            issued: 0,
        }];
        let mut seen = Vec::new();
        explore(&layout, procs, 10, &mut |outs| seen.push(outs[0])).unwrap();
        assert_eq!(seen, vec![Some(7)]);
    }
}

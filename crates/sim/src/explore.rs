//! Exhaustive exploration of all interleavings (compatibility façade).
//!
//! This module predates the model-checking subsystem and now forwards
//! to it: [`explore`] is the naive multinomial enumerator, kept for
//! callers that only need outputs. New code should use
//! [`crate::mc`] directly — [`explore_naive`](crate::mc::explore_naive)
//! for the raw enumeration with event recording, or
//! [`explore_dpor`](crate::mc::explore_dpor) for the partial-order-
//! reduced explorer that makes non-toy instances feasible and supports
//! crash injection.

use crate::layout::Layout;
use crate::mc::explore_naive;
pub use crate::mc::TooManyExecutions;
use crate::process::Process;

/// Enumerates every interleaving of `processes` over fresh memory for
/// `layout`, calling `visit` with the final outputs of each maximal
/// execution.
///
/// Returns the number of executions visited.
///
/// # Errors
///
/// Returns [`TooManyExecutions`] (after aborting the walk) if more than
/// `limit` executions exist.
///
/// # Examples
///
/// ```
/// use sift_sim::explore::explore;
/// use sift_sim::{LayoutBuilder, Op, OpResult, Process, RegisterId, Step};
///
/// #[derive(Clone)]
/// struct WriteThenRead(RegisterId, u64, u8);
/// impl Process for WriteThenRead {
///     type Value = u64;
///     type Output = Option<u64>;
///     fn step(&mut self, prev: Option<OpResult<u64>>) -> Step<u64, Option<u64>> {
///         self.2 += 1;
///         match self.2 {
///             1 => Step::Issue(Op::RegisterWrite(self.0, self.1)),
///             2 => Step::Issue(Op::RegisterRead(self.0)),
///             _ => Step::Done(prev.unwrap().expect_register()),
///         }
///     }
/// }
///
/// let mut b = LayoutBuilder::new();
/// let r = b.register();
/// let layout = b.build();
/// let procs = vec![WriteThenRead(r, 1, 0), WriteThenRead(r, 2, 0)];
/// let mut executions = 0;
/// let total = explore(&layout, procs, 1_000, &mut |outs| {
///     executions += 1;
///     // Each process reads some process's write (never ⊥).
///     assert!(outs.iter().all(|o| o.unwrap().is_some()));
/// })
/// .unwrap();
/// // Two processes, two ops each: C(4, 2) = 6 interleavings.
/// assert_eq!(total, 6);
/// assert_eq!(executions, 6);
/// ```
pub fn explore<P>(
    layout: &Layout,
    processes: Vec<P>,
    limit: u64,
    visit: &mut impl FnMut(&[Option<P::Output>]),
) -> Result<u64, TooManyExecutions>
where
    P: Process + Clone,
    P::Output: Clone,
{
    explore_naive(layout, processes, limit, &mut |view| visit(view.outputs))
}

//! Atomic multi-writer multi-reader registers for the simulator.

use crate::value::Value;

/// A multi-writer multi-reader atomic register, initially ⊥ (`None`).
///
/// In the simulator every operation executes atomically at its scheduled
/// step, so a plain cell is a faithful register. Registers are unbounded
/// (§1.1 of the paper).
///
/// # Examples
///
/// ```
/// use sift_sim::register::Register;
/// let mut r = Register::new();
/// assert_eq!(r.read(), None);
/// r.write(42u32);
/// assert_eq!(r.read(), Some(&42));
/// ```
#[derive(Debug, Clone)]
pub struct Register<V> {
    value: Option<V>,
    /// The value displaced by the most recent write (⊥ before the second
    /// write). Only consulted by the regular-register substrate mode.
    prev: Option<V>,
    /// Global op-clock times of the first and latest write
    /// (0 = never written; the clock starts at 1).
    first_write_at: u64,
    last_write_at: u64,
    writes: u64,
    reads: u64,
}

// Manual impl: the derive would demand `V: Default`, but an empty
// register is ⊥ for any value type (required by the paged lazy memory).
impl<V> Default for Register<V> {
    fn default() -> Self {
        Self {
            value: None,
            prev: None,
            first_write_at: 0,
            last_write_at: 0,
            writes: 0,
            reads: 0,
        }
    }
}

impl<V: Value> Register<V> {
    /// Creates a register holding ⊥.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the register; `None` is ⊥.
    pub fn read(&mut self) -> Option<&V> {
        self.reads += 1;
        self.value.as_ref()
    }

    /// Writes `value`.
    pub fn write(&mut self, value: V) {
        self.writes += 1;
        self.prev = self.value.replace(value);
    }

    /// Writes `value` at global op-clock time `now`, recording the
    /// timestamps the regular-register read path consults.
    pub fn write_at(&mut self, value: V, now: u64) {
        if self.first_write_at == 0 {
            self.first_write_at = now;
        }
        self.last_write_at = now;
        self.write(value);
    }

    /// A *regular* read by a process whose last scheduled step was at
    /// global op-clock time `epoch`: any write executed after `epoch`
    /// counts as concurrent with this read, and the resolution may
    /// legally return the superseded value instead of the newest one.
    ///
    /// This returns the stalest value a regular register may serve:
    ///
    /// * no write after `epoch` → the current value (the read does not
    ///   overlap any write; regularity forces the latest value);
    /// * *every* write is after `epoch` → ⊥ (no write preceded the
    ///   read's start, ⊥ is the initial value, and the overlapping
    ///   writes need not be observed);
    /// * otherwise → `prev`. When the displaced write executed at or
    ///   before `epoch` it is the last write preceding the read; when
    ///   it executed after `epoch` it overlaps the read. Either way a
    ///   regular register may return it.
    pub fn read_stale(&mut self, epoch: u64) -> Option<&V> {
        self.reads += 1;
        if self.last_write_at <= epoch {
            self.value.as_ref()
        } else if self.first_write_at > epoch {
            None
        } else {
            self.prev.as_ref()
        }
    }

    /// Whether a write has executed strictly after op-clock `epoch`
    /// (i.e. a read by a process last scheduled at `epoch` overlaps a
    /// write under the regular-register model).
    pub fn written_since(&self, epoch: u64) -> bool {
        self.last_write_at > epoch
    }

    /// Returns the current value without counting a read (for probes and
    /// assertions, not for protocol logic).
    pub fn peek(&self) -> Option<&V> {
        self.value.as_ref()
    }

    /// Number of write operations executed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Number of read operations executed.
    pub fn read_count(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_bottom() {
        let mut r: Register<u64> = Register::new();
        assert_eq!(r.read(), None);
        assert_eq!(r.peek(), None);
    }

    #[test]
    fn last_write_wins() {
        let mut r = Register::new();
        r.write(1u8);
        r.write(2u8);
        assert_eq!(r.read(), Some(&2));
    }

    #[test]
    fn counts_ops() {
        let mut r = Register::new();
        r.write(1u8);
        let _ = r.read();
        let _ = r.read();
        let _ = r.peek();
        assert_eq!(r.write_count(), 1);
        assert_eq!(r.read_count(), 2);
    }

    #[test]
    fn stale_read_tracks_epoch() {
        let mut r = Register::new();
        r.write_at(10u8, 3);
        r.write_at(20u8, 7);
        // A reader whose last step was after every write sees the latest
        // value: no concurrency, regularity pins the answer.
        assert_eq!(r.read_stale(7), Some(&20));
        assert_eq!(r.read_stale(9), Some(&20));
        // A reader from before the second write may see the displaced
        // value.
        assert_eq!(r.read_stale(5), Some(&10));
        // A reader from before *any* write may see ⊥.
        assert_eq!(r.read_stale(2), None);
        assert_eq!(r.read_stale(0), None);
        assert!(r.written_since(5));
        assert!(!r.written_since(7));
        assert_eq!(r.read_count(), 5);
    }

    #[test]
    fn single_overlapping_write_resolves_to_bottom() {
        let mut r = Register::new();
        r.write_at(42u8, 4);
        // Read started before the only write: ⊥ preceded it.
        assert_eq!(r.read_stale(1), None);
        // Read started after it: forced to the written value.
        assert_eq!(r.read_stale(4), Some(&42));
    }
}

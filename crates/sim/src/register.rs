//! Atomic multi-writer multi-reader registers for the simulator.

use crate::value::Value;

/// A multi-writer multi-reader atomic register, initially ⊥ (`None`).
///
/// In the simulator every operation executes atomically at its scheduled
/// step, so a plain cell is a faithful register. Registers are unbounded
/// (§1.1 of the paper).
///
/// # Examples
///
/// ```
/// use sift_sim::register::Register;
/// let mut r = Register::new();
/// assert_eq!(r.read(), None);
/// r.write(42u32);
/// assert_eq!(r.read(), Some(&42));
/// ```
#[derive(Debug, Clone)]
pub struct Register<V> {
    value: Option<V>,
    writes: u64,
    reads: u64,
}

// Manual impl: the derive would demand `V: Default`, but an empty
// register is ⊥ for any value type (required by the paged lazy memory).
impl<V> Default for Register<V> {
    fn default() -> Self {
        Self {
            value: None,
            writes: 0,
            reads: 0,
        }
    }
}

impl<V: Value> Register<V> {
    /// Creates a register holding ⊥.
    pub fn new() -> Self {
        Self {
            value: None,
            writes: 0,
            reads: 0,
        }
    }

    /// Reads the register; `None` is ⊥.
    pub fn read(&mut self) -> Option<&V> {
        self.reads += 1;
        self.value.as_ref()
    }

    /// Writes `value`.
    pub fn write(&mut self, value: V) {
        self.writes += 1;
        self.value = Some(value);
    }

    /// Returns the current value without counting a read (for probes and
    /// assertions, not for protocol logic).
    pub fn peek(&self) -> Option<&V> {
        self.value.as_ref()
    }

    /// Number of write operations executed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Number of read operations executed.
    pub fn read_count(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_bottom() {
        let mut r: Register<u64> = Register::new();
        assert_eq!(r.read(), None);
        assert_eq!(r.peek(), None);
    }

    #[test]
    fn last_write_wins() {
        let mut r = Register::new();
        r.write(1u8);
        r.write(2u8);
        assert_eq!(r.read(), Some(&2));
    }

    #[test]
    fn counts_ops() {
        let mut r = Register::new();
        r.write(1u8);
        let _ = r.read();
        let _ = r.read();
        let _ = r.peek();
        assert_eq!(r.write_count(), 1);
        assert_eq!(r.read_count(), 2);
    }
}

//! The adversary lattice: parameterized schedulers between the
//! oblivious and adaptive extremes.
//!
//! The paper's bounds (§1.1) hold against an **oblivious** adversary —
//! one that commits to the entire schedule before any process flips a
//! coin — and demonstrably fail against an **adaptive** one that
//! watches every coin (experiment E20; Attiya–Censor's `Ω(n²)` lower
//! bound explains why). Between the two sits a lattice of intermediate
//! adversaries, notably Robinson–Scheideler–Setzer's *late* adversary
//! (arXiv 1805.00774), which reacts to the computation with a one-round
//! delay. This module pins the whole lattice behind one knob:
//!
//! * [`AdversaryStrength::Oblivious`] — the paper's model. No chooser
//!   is involved: callers run a precommitted
//!   [`Schedule`](crate::schedule::Schedule) as usual.
//! * [`AdversaryStrength::Delayed`]`(k)` — the adversary sees a full
//!   snapshot of process states and memory, but **k steps stale**. Its
//!   scheduling decision at step `t` uses the observation taken at step
//!   `t - k`.
//! * [`AdversaryStrength::Late`] — `Delayed(1)`, the weakest
//!   non-oblivious point: reacting with a single step of lag.
//! * [`AdversaryStrength::Adaptive`] — `Delayed(0)`: the classic
//!   adaptive adversary of [`Engine::run_adaptive`].
//!
//! The delayed tiers are implemented by [`DelayedChooser`], a wrapper
//! that ring-buffers observations extracted from successive
//! [`AdaptiveView`]s and feeds the decision function the stale one.
//! Two modeling choices are deliberate:
//!
//! * **Liveness knowledge is always current.** The chooser must name a
//!   live process, so the decision function receives the current live
//!   set alongside the stale observation. Only *strategic* information
//!   (process states, pending operations, memory contents) is delayed.
//!   This matches the late-adversary model, where crashes/completions
//!   are visible but coin flips are not yet.
//! * **`Delayed(k)` degenerates to oblivious as `k` grows.** Once `k`
//!   reaches the run length, every decision uses the empty observation,
//!   so the decision function is a deterministic (or pre-seeded)
//!   function of the step index and live set — exactly a schedule the
//!   adversary could have committed to in advance. The lattice is
//!   therefore genuinely ordered: each tier's schedules are a superset
//!   of the weaker tier's.
//!
//! [`Engine::run_adaptive`]: crate::engine::Engine::run_adaptive
//! [`AdaptiveView`]: crate::engine::AdaptiveView

use std::collections::VecDeque;

use crate::engine::AdaptiveView;
use crate::ids::ProcessId;
use crate::process::Process;

/// How much of the computation the adversary sees when scheduling.
///
/// Ordered from weakest to strongest; see the [module docs](self) for
/// the semantics of each tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdversaryStrength {
    /// The schedule is fixed before the run (the paper's model).
    #[default]
    Oblivious,
    /// Scheduling decisions use observations `k` steps stale.
    Delayed(usize),
    /// The late adversary: `Delayed(1)`.
    Late,
    /// The adaptive adversary: `Delayed(0)`.
    Adaptive,
}

impl AdversaryStrength {
    /// The observation delay in steps, or `None` for the oblivious tier
    /// (which never observes the run at all).
    pub fn delay(self) -> Option<usize> {
        match self {
            Self::Oblivious => None,
            Self::Delayed(k) => Some(k),
            Self::Late => Some(1),
            Self::Adaptive => Some(0),
        }
    }

    /// Whether this is the oblivious tier.
    pub fn is_oblivious(self) -> bool {
        matches!(self, Self::Oblivious)
    }

    /// A short stable name for tables and JSON keys.
    pub fn name(self) -> String {
        match self {
            Self::Oblivious => "oblivious".into(),
            Self::Delayed(k) => format!("delayed({k})"),
            Self::Late => "late".into(),
            Self::Adaptive => "adaptive".into(),
        }
    }

    /// The standard sweep used by the experiments and the fuzz genome:
    /// oblivious → heavily delayed → mildly delayed → late → adaptive.
    pub fn lattice() -> [Self; 5] {
        [
            Self::Oblivious,
            Self::Delayed(64),
            Self::Delayed(8),
            Self::Late,
            Self::Adaptive,
        ]
    }
}

/// A chooser for [`Engine::run_adaptive`] whose strategic information
/// is `delay` steps stale.
///
/// `extract` digests each step's [`AdaptiveView`] into an owned
/// observation `O` (the view borrows the engine, so observations must
/// be owned to outlive it); `decide` receives the observation from
/// `delay` steps ago (`None` until the run is `delay` steps old, and
/// always `None` when `delay` exceeds the run length) plus the current
/// live set, and names the next process to schedule.
///
/// With `delay == 0` this is precisely the adaptive adversary: the
/// observation handed to `decide` is the one just extracted.
///
/// # Examples
///
/// ```
/// use sift_sim::adversary::{AdversaryStrength, DelayedChooser};
/// use sift_sim::schedule::Schedule;
/// use sift_sim::{Engine, LayoutBuilder, Op, OpResult, Process, Step};
///
/// struct Writer(sift_sim::RegisterId, bool);
/// impl Process for Writer {
///     type Value = u64;
///     type Output = u64;
///     fn step(&mut self, _prev: Option<OpResult<u64>>) -> Step<u64, u64> {
///         if self.1 { Step::Done(1) } else { self.1 = true; Step::Issue(Op::RegisterWrite(self.0, 7)) }
///     }
/// }
///
/// let mut b = LayoutBuilder::new();
/// let r = b.register();
/// let layout = b.build();
/// let procs = vec![Writer(r, false), Writer(r, false)];
/// let delay = AdversaryStrength::Late.delay().unwrap();
/// let mut chooser = DelayedChooser::new(
///     delay,
///     |view: &sift_sim::AdaptiveView<'_, Writer>| view.live.len(),
///     |stale: Option<&usize>, live: &[sift_sim::ProcessId]| {
///         // The late adversary schedules the lowest pid, breaking
///         // ties with the (stale) live count's parity.
///         live[stale.copied().unwrap_or(0) % live.len()]
///     },
/// );
/// let report = Engine::new(&layout, procs).run_adaptive(|view| chooser.choose(&view));
/// assert!(report.all_decided());
/// ```
///
/// [`Engine::run_adaptive`]: crate::engine::Engine::run_adaptive
#[derive(Debug)]
pub struct DelayedChooser<O, X, D> {
    delay: usize,
    buf: VecDeque<O>,
    extract: X,
    decide: D,
}

impl<O, X, D> DelayedChooser<O, X, D> {
    /// Creates a chooser with the given observation delay.
    pub fn new(delay: usize, extract: X, decide: D) -> Self {
        Self {
            delay,
            buf: VecDeque::with_capacity(delay.saturating_add(1).min(1024)),
            extract,
            decide,
        }
    }

    /// The observation delay in steps.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Chooses the next process for [`Engine::run_adaptive`]: extracts
    /// the current observation, then decides on the one from
    /// [`delay`](Self::delay) steps ago.
    ///
    /// [`Engine::run_adaptive`]: crate::engine::Engine::run_adaptive
    pub fn choose<P>(&mut self, view: &AdaptiveView<'_, P>) -> ProcessId
    where
        P: Process,
        X: FnMut(&AdaptiveView<'_, P>) -> O,
        D: FnMut(Option<&O>, &[ProcessId]) -> ProcessId,
    {
        self.buf.push_back((self.extract)(view));
        let stale = if self.buf.len() > self.delay {
            self.buf.get(self.buf.len() - 1 - self.delay)
        } else {
            None
        };
        let live: Vec<ProcessId> = view.live.iter().map(|(pid, _, _)| *pid).collect();
        let pid = (self.decide)(stale, &live);
        // The front observation is never consulted again once the
        // buffer holds more than `delay + 1` entries' worth of history,
        // so memory stays O(delay) regardless of run length.
        if self.buf.len() > self.delay {
            self.buf.pop_front();
        }
        pid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::layout::LayoutBuilder;
    use crate::op::{Op, OpResult};
    use crate::process::Step;

    /// Issues `remaining` reads of one register, then finishes with the
    /// number of non-⊥ values it saw.
    struct Reader {
        reg: crate::ids::RegisterId,
        remaining: usize,
        seen: u64,
    }

    impl Process for Reader {
        type Value = u64;
        type Output = u64;

        fn step(&mut self, prev: Option<OpResult<u64>>) -> Step<u64, u64> {
            if let Some(OpResult::RegisterValue(Some(_))) = prev {
                self.seen += 1;
            }
            if self.remaining == 0 {
                Step::Done(self.seen)
            } else {
                self.remaining -= 1;
                Step::Issue(Op::RegisterRead(self.reg))
            }
        }
    }

    fn run_with_delay(delay: usize) -> (Vec<Option<usize>>, Vec<usize>) {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let layout = b.build();
        let procs: Vec<Reader> = (0..3)
            .map(|_| Reader {
                reg: r,
                remaining: 4,
                seen: 0,
            })
            .collect();
        // Observation: the live count. Record what `decide` is shown
        // alongside what was current at that step.
        let mut shown = Vec::new();
        let mut current = Vec::new();
        let mut chooser = DelayedChooser::new(
            delay,
            |view: &AdaptiveView<'_, Reader>| view.live.len(),
            |stale: Option<&usize>, live: &[ProcessId]| {
                shown.push(stale.copied());
                live[0]
            },
        );
        let report = Engine::new(&layout, procs).run_adaptive(|view| {
            current.push(view.live.len());
            chooser.choose(&view)
        });
        assert!(report.all_decided());
        (shown, current)
    }

    #[test]
    fn zero_delay_is_adaptive() {
        let (shown, current) = run_with_delay(0);
        let shown: Vec<usize> = shown.into_iter().map(|o| o.unwrap()).collect();
        assert_eq!(shown, current, "delay 0 must see the current observation");
    }

    #[test]
    fn delayed_observations_lag_by_k() {
        for delay in [1usize, 3, 7] {
            let (shown, current) = run_with_delay(delay);
            for (t, obs) in shown.iter().enumerate() {
                if t < delay {
                    assert_eq!(*obs, None, "delay {delay}, step {t}");
                } else {
                    assert_eq!(*obs, Some(current[t - delay]), "delay {delay}, step {t}");
                }
            }
        }
    }

    #[test]
    fn huge_delay_never_observes() {
        let (shown, _) = run_with_delay(10_000);
        assert!(
            shown.iter().all(Option::is_none),
            "a delay beyond the run length degenerates to oblivious"
        );
    }

    #[test]
    fn strength_knob_maps_to_delays() {
        assert_eq!(AdversaryStrength::Oblivious.delay(), None);
        assert!(AdversaryStrength::Oblivious.is_oblivious());
        assert_eq!(AdversaryStrength::Adaptive.delay(), Some(0));
        assert_eq!(AdversaryStrength::Late.delay(), Some(1));
        assert_eq!(AdversaryStrength::Delayed(9).delay(), Some(9));
        assert_eq!(AdversaryStrength::Delayed(2).name(), "delayed(2)");
        let lattice = AdversaryStrength::lattice();
        assert_eq!(lattice.len(), 5);
        assert!(lattice[0].is_oblivious());
        assert_eq!(lattice[4], AdversaryStrength::Adaptive);
    }
}

//! Protocol-state fingerprints and the novelty (coverage) map.
//!
//! Coverage-guided fuzzing needs a cheap, deterministic digest of "what
//! happened" in a run so that schedules exercising new protocol states
//! are kept and mutated further. The fingerprint here mixes the charged
//! operation interleaving (from the engine [`Trace`]) with any
//! caller-supplied protocol state signature (e.g. per-round survivor
//! counts) through an FNV-1a accumulator.

use std::collections::HashSet;

use crate::metrics::op_kind_index;
use crate::trace::Trace;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a (64-bit) fingerprint accumulator.
///
/// Not a cryptographic hash; collisions merely make the fuzzer treat a
/// novel state as already seen, which costs coverage but never
/// soundness.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u64,
}

impl FingerprintHasher {
    /// Starts a fresh accumulator.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Mixes one word into the fingerprint, byte by byte.
    pub fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes a `usize` (as `u64`).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Mixes raw bytes (length-prefixed, so concatenations of different
    /// splits hash differently).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The fingerprint accumulated so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Digest of the charged-operation interleaving of a run: who moved at
/// each charged slot and what kind of operation they performed.
///
/// Distinct from [`mc::trace_signature`](crate::mc::trace_signature),
/// which canonicalizes Mazurkiewicz traces for the DPOR explorer; this
/// one digests the literal engine [`Trace`].
pub fn interleaving_signature(trace: &Trace) -> u64 {
    let mut h = FingerprintHasher::new();
    for e in trace.events() {
        h.write_u64(((e.pid.index() as u64) << 3) | op_kind_index(e.kind) as u64);
    }
    h.finish()
}

/// The set of fingerprints observed so far; a schedule is *novel* when
/// its fingerprint has never been seen.
#[derive(Debug, Default)]
pub struct CoverageMap {
    seen: HashSet<u64>,
}

impl CoverageMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `fingerprint`; returns `true` if it was novel.
    pub fn observe(&mut self, fingerprint: u64) -> bool {
        self.seen.insert(fingerprint)
    }

    /// Returns `true` without recording if `fingerprint` would be novel.
    pub fn is_novel(&self, fingerprint: u64) -> bool {
        !self.seen.contains(&fingerprint)
    }

    /// Number of distinct fingerprints observed.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Returns `true` if nothing was observed yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_deterministic_and_order_sensitive() {
        let mut a = FingerprintHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = FingerprintHasher::new();
        b.write_u64(1);
        b.write_u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = FingerprintHasher::new();
        c.write_u64(2);
        c.write_u64(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn empty_hasher_is_the_fnv_offset() {
        assert_eq!(FingerprintHasher::new().finish(), FNV_OFFSET);
        assert_eq!(FingerprintHasher::default().finish(), FNV_OFFSET);
    }

    #[test]
    fn byte_writes_are_length_prefixed() {
        let digest = |chunks: &[&[u8]]| {
            let mut h = FingerprintHasher::new();
            for c in chunks {
                h.write_bytes(c);
            }
            h.finish()
        };
        assert_eq!(digest(&[b"ab", b"c"]), digest(&[b"ab", b"c"]));
        assert_ne!(digest(&[b"ab", b"c"]), digest(&[b"a", b"bc"]));
        assert_ne!(digest(&[b""]), digest(&[]));
    }

    #[test]
    fn trace_signature_distinguishes_interleavings() {
        use crate::ids::ProcessId;
        use crate::op::OpKind;
        use crate::trace::TraceEvent;
        let ev = |slot, pid, kind| TraceEvent {
            slot,
            pid: ProcessId(pid),
            kind,
        };
        let mut a = Trace::new();
        a.push(ev(0, 0, OpKind::RegisterWrite));
        a.push(ev(1, 1, OpKind::RegisterRead));
        let mut b = Trace::new();
        b.push(ev(0, 1, OpKind::RegisterRead));
        b.push(ev(1, 0, OpKind::RegisterWrite));
        assert_ne!(interleaving_signature(&a), interleaving_signature(&b));
        // The slot index itself is not mixed in: only order matters.
        let mut c = Trace::new();
        c.push(ev(7, 0, OpKind::RegisterWrite));
        c.push(ev(9, 1, OpKind::RegisterRead));
        assert_eq!(interleaving_signature(&a), interleaving_signature(&c));
    }

    #[test]
    fn coverage_map_tracks_novelty() {
        let mut map = CoverageMap::new();
        assert!(map.is_empty());
        assert!(map.is_novel(7));
        assert!(map.observe(7));
        assert!(!map.observe(7));
        assert!(!map.is_novel(7));
        assert!(map.observe(8));
        assert_eq!(map.len(), 2);
        assert!(!map.is_empty());
    }
}

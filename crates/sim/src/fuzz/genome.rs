//! Adversary-schedule genomes: the mutable blueprints the fuzzer evolves.
//!
//! A [`ScheduleGenome`] is a short program in a tiny strategy language
//! ([`Gene`]): round-robin passes, seeded random interleavings, solo
//! bursts targeting one persona's carrier, front-runner stalling
//! (everyone *except* a victim runs), block-sequential phases, and crash
//! injection. Compiling a genome yields a concrete oblivious schedule —
//! the gene sequence is fixed before any process flips a coin, so the
//! compiled schedule never depends on execution state, only on the
//! genome and its embedded seeds (§1.1 obliviousness by construction).
//!
//! Crashes need no special engine support: a crashed process simply
//! stops appearing in the compiled slot sequence, exactly like the
//! finite-schedule crash encoding used by the model checker.

use crate::adversary::AdversaryStrength;
use crate::ids::ProcessId;
use crate::memory::{RegisterSemantics, Resolution};
use crate::rng::Xoshiro256StarStar;
use crate::schedule::Schedule;

/// One strategy fragment of a schedule genome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gene {
    /// `rounds` full passes over the currently-alive processes in id
    /// order.
    RoundRobin {
        /// Number of passes.
        rounds: usize,
    },
    /// `slots` slots drawn uniformly (from `seed`) among alive
    /// processes.
    Random {
        /// Seed of the gene's private slot-choice stream.
        seed: u64,
        /// Number of slots to emit.
        slots: usize,
    },
    /// Each alive process solo for `per_proc` slots, in an order
    /// shuffled from `seed` (block-sequential phases).
    Block {
        /// Seed of the gene's private shuffle stream.
        seed: u64,
        /// Slots given to each process before moving on.
        per_proc: usize,
    },
    /// Front-runner stalling: `slots` slots round-robin over everyone
    /// *except* the victim, starving it while the rest race ahead.
    Stall {
        /// Index of the starved process (taken modulo the alive count).
        victim: usize,
        /// Number of slots the victim is starved for.
        slots: usize,
    },
    /// Persona targeting: one process runs solo for `slots` slots.
    Solo {
        /// Index of the favoured process (taken modulo the alive count).
        pid: usize,
        /// Number of consecutive slots it receives.
        slots: usize,
    },
    /// Crash a process: it never appears in any later gene. Ignored if
    /// it would crash the last alive process (wait-freedom needs a
    /// survivor).
    Crash {
        /// Index of the crashed process (taken modulo the alive count).
        victim: usize,
    },
    /// Environment gene (extended pool only): the adversary strength
    /// the campaign harness runs this genome under. Emits no slots —
    /// [`ScheduleGenome::compile`] skips it; read it back with
    /// [`ScheduleGenome::environment`] (last occurrence wins). The
    /// compiled slot sequence stays oblivious; strengths above
    /// [`AdversaryStrength::Oblivious`] tell the harness to *replace*
    /// the compiled schedule with a state-reactive chooser of that
    /// strength.
    Adversary {
        /// The lattice point to run under.
        strength: AdversaryStrength,
    },
    /// Environment gene (extended pool only): the register semantics
    /// the genome's runs execute under. Emits no slots; last occurrence
    /// wins (see [`ScheduleGenome::environment`]).
    Semantics {
        /// Atomic, or regular with a fixed resolution policy.
        semantics: RegisterSemantics,
    },
}

impl Gene {
    fn random(n: usize, rng: &mut Xoshiro256StarStar) -> Gene {
        // The kind draw MUST stay `range_u64(6)` here: campaign digests
        // (FUZZ_GOLDEN) replay this exact randomness stream. New gene
        // kinds go in `random_extended` below.
        let kind = rng.range_u64(6);
        Self::core(kind, n, rng)
    }

    /// Draws from the extended pool: the six schedule genes plus the
    /// two environment genes (adversary strength, register semantics).
    fn random_extended(n: usize, rng: &mut Xoshiro256StarStar) -> Gene {
        match rng.range_u64(8) {
            6 => {
                let lattice = AdversaryStrength::lattice();
                Gene::Adversary {
                    strength: lattice[rng.range_u64(lattice.len() as u64) as usize],
                }
            }
            7 => Gene::Semantics {
                semantics: match rng.range_u64(4) {
                    0 => RegisterSemantics::Atomic,
                    1 => RegisterSemantics::Regular(Resolution::AlwaysNew),
                    2 => RegisterSemantics::Regular(Resolution::AlwaysOld),
                    _ => RegisterSemantics::Regular(Resolution::Coin(rng.next_u64())),
                },
            },
            kind => Self::core(kind, n, rng),
        }
    }

    fn core(kind: u64, n: usize, rng: &mut Xoshiro256StarStar) -> Gene {
        let burst = (4 * n).max(4) as u64;
        match kind {
            0 => Gene::RoundRobin {
                rounds: 1 + rng.range_u64(4) as usize,
            },
            1 => Gene::Random {
                seed: rng.next_u64(),
                slots: 1 + rng.range_u64(burst) as usize,
            },
            2 => Gene::Block {
                seed: rng.next_u64(),
                per_proc: 1 + rng.range_u64(8) as usize,
            },
            3 => Gene::Stall {
                victim: rng.range_u64(n as u64) as usize,
                slots: 1 + rng.range_u64(burst) as usize,
            },
            4 => Gene::Solo {
                pid: rng.range_u64(n as u64) as usize,
                slots: 1 + rng.range_u64(8) as usize,
            },
            _ => Gene::Crash {
                victim: rng.range_u64(n as u64) as usize,
            },
        }
    }
}

/// The execution environment a genome asks for, aggregated from its
/// environment genes (defaults when it carries none): which adversary
/// strength the harness should drive the run with, and which register
/// semantics the memory should execute under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Environment {
    /// Adversary lattice point (default [`AdversaryStrength::Oblivious`]).
    pub strength: AdversaryStrength,
    /// Register semantics (default [`RegisterSemantics::Atomic`]).
    pub semantics: RegisterSemantics,
}

/// A mutable adversary blueprint: an ordered gene sequence for `n`
/// processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleGenome {
    genes: Vec<Gene>,
}

impl ScheduleGenome {
    /// Builds a genome from explicit genes (tests, replay).
    ///
    /// # Panics
    ///
    /// Panics if `genes` is empty.
    pub fn from_genes(genes: Vec<Gene>) -> Self {
        assert!(!genes.is_empty(), "a genome needs at least one gene");
        Self { genes }
    }

    /// Draws a fresh random genome of 1–6 genes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random(n: usize, rng: &mut Xoshiro256StarStar) -> Self {
        assert!(n > 0, "need at least one process");
        let count = 1 + rng.range_u64(6) as usize;
        Self {
            genes: (0..count).map(|_| Gene::random(n, rng)).collect(),
        }
    }

    /// Draws a fresh random genome of 1–6 genes from the extended pool
    /// (schedule genes plus environment genes).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_extended(n: usize, rng: &mut Xoshiro256StarStar) -> Self {
        assert!(n > 0, "need at least one process");
        let count = 1 + rng.range_u64(6) as usize;
        Self {
            genes: (0..count).map(|_| Gene::random_extended(n, rng)).collect(),
        }
    }

    /// Produces a mutated copy: insert, delete, replace, or swap one
    /// gene.
    pub fn mutate(&self, n: usize, rng: &mut Xoshiro256StarStar) -> Self {
        self.mutate_impl(n, rng, false)
    }

    /// [`mutate`](Self::mutate), drawing replacement/inserted genes
    /// from the extended pool.
    pub fn mutate_extended(&self, n: usize, rng: &mut Xoshiro256StarStar) -> Self {
        self.mutate_impl(n, rng, true)
    }

    fn mutate_impl(&self, n: usize, rng: &mut Xoshiro256StarStar, extended: bool) -> Self {
        let fresh = if extended {
            Gene::random_extended
        } else {
            Gene::random
        };
        let mut genes = self.genes.clone();
        match rng.range_u64(4) {
            0 => {
                let at = rng.range_u64(genes.len() as u64 + 1) as usize;
                genes.insert(at, fresh(n, rng));
            }
            1 if genes.len() > 1 => {
                let at = rng.range_u64(genes.len() as u64) as usize;
                genes.remove(at);
            }
            2 => {
                let at = rng.range_u64(genes.len() as u64) as usize;
                genes[at] = fresh(n, rng);
            }
            _ => {
                let a = rng.range_u64(genes.len() as u64) as usize;
                let b = rng.range_u64(genes.len() as u64) as usize;
                genes.swap(a, b);
            }
        }
        Self { genes }
    }

    /// The gene sequence.
    pub fn genes(&self) -> &[Gene] {
        &self.genes
    }

    /// The execution environment the genome's environment genes ask
    /// for, defaults where it carries none. Later genes win, matching
    /// the "last write" reading of the gene program.
    pub fn environment(&self) -> Environment {
        let mut env = Environment::default();
        for gene in &self.genes {
            match *gene {
                Gene::Adversary { strength } => env.strength = strength,
                Gene::Semantics { semantics } => env.semantics = semantics,
                _ => {}
            }
        }
        env
    }

    /// Compiles the genome into a concrete oblivious schedule for `n`
    /// processes: a finite slot prefix (every gene expanded against the
    /// alive-set evolution) followed by an infinite round-robin tail
    /// over the processes still alive at the end, which is the
    /// schedule's [`support`](Schedule::support).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn compile(&self, n: usize) -> GenomeSchedule {
        assert!(n > 0, "need at least one process");
        let mut alive: Vec<ProcessId> = (0..n).map(ProcessId).collect();
        let mut prefix = Vec::new();
        for gene in &self.genes {
            match *gene {
                Gene::RoundRobin { rounds } => {
                    for _ in 0..rounds {
                        prefix.extend_from_slice(&alive);
                    }
                }
                Gene::Random { seed, slots } => {
                    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
                    for _ in 0..slots {
                        prefix.push(alive[rng.range_u64(alive.len() as u64) as usize]);
                    }
                }
                Gene::Block { seed, per_proc } => {
                    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
                    let mut order = alive.clone();
                    // Fisher–Yates from the gene's private stream.
                    for i in (1..order.len()).rev() {
                        let j = rng.range_u64(i as u64 + 1) as usize;
                        order.swap(i, j);
                    }
                    for pid in order {
                        for _ in 0..per_proc {
                            prefix.push(pid);
                        }
                    }
                }
                Gene::Stall { victim, slots } => {
                    let victim = alive[victim % alive.len()];
                    let others: Vec<ProcessId> =
                        alive.iter().copied().filter(|&p| p != victim).collect();
                    // With one process alive there is no one else to run.
                    let pool = if others.is_empty() { &alive } else { &others };
                    for i in 0..slots {
                        prefix.push(pool[i % pool.len()]);
                    }
                }
                Gene::Solo { pid, slots } => {
                    let pid = alive[pid % alive.len()];
                    for _ in 0..slots {
                        prefix.push(pid);
                    }
                }
                Gene::Crash { victim } => {
                    if alive.len() > 1 {
                        alive.remove(victim % alive.len());
                    }
                }
                // Environment genes shape how the harness runs the
                // schedule, not the slot sequence itself.
                Gene::Adversary { .. } | Gene::Semantics { .. } => {}
            }
        }
        GenomeSchedule {
            prefix,
            cursor: 0,
            alive,
            tail_pos: 0,
        }
    }
}

/// A compiled [`ScheduleGenome`]: finite prefix, then an infinite
/// round-robin tail over the surviving (never-crashed) processes.
#[derive(Debug, Clone)]
pub struct GenomeSchedule {
    prefix: Vec<ProcessId>,
    cursor: usize,
    alive: Vec<ProcessId>,
    tail_pos: usize,
}

impl GenomeSchedule {
    /// Length of the finite compiled prefix.
    pub fn prefix_len(&self) -> usize {
        self.prefix.len()
    }

    /// The processes never crashed by the genome (the schedule support).
    pub fn alive(&self) -> &[ProcessId] {
        &self.alive
    }
}

impl Schedule for GenomeSchedule {
    fn next_pid(&mut self) -> Option<ProcessId> {
        if self.cursor < self.prefix.len() {
            let pid = self.prefix[self.cursor];
            self.cursor += 1;
            return Some(pid);
        }
        let pid = self.alive[self.tail_pos % self.alive.len()];
        self.tail_pos += 1;
        Some(pid)
    }

    fn support(&self) -> Vec<ProcessId> {
        self.alive.clone()
    }

    fn completion_oblivious(&self) -> bool {
        // Prefix and round-robin tail are compiled before the run.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn compile_is_deterministic() {
        let g = ScheduleGenome::random(6, &mut rng(3));
        let a = g.compile(6);
        let b = g.compile(6);
        assert_eq!(a.prefix, b.prefix);
        assert_eq!(a.alive, b.alive);
    }

    #[test]
    fn prefix_pids_are_in_range() {
        for seed in 0..50 {
            let g = ScheduleGenome::random(5, &mut rng(seed));
            let s = g.compile(5);
            assert!(s.prefix.iter().all(|p| p.index() < 5), "{:?}", g);
        }
    }

    #[test]
    fn crash_removes_from_support_and_later_genes() {
        let g = ScheduleGenome::from_genes(vec![
            Gene::Crash { victim: 0 },
            Gene::RoundRobin { rounds: 1 },
        ]);
        let s = g.compile(3);
        assert_eq!(s.alive(), &[ProcessId(1), ProcessId(2)]);
        assert_eq!(s.prefix, vec![ProcessId(1), ProcessId(2)]);
    }

    #[test]
    fn crash_never_empties_the_alive_set() {
        let g = ScheduleGenome::from_genes(vec![
            Gene::Crash { victim: 0 },
            Gene::Crash { victim: 0 },
            Gene::Crash { victim: 0 },
        ]);
        let s = g.compile(2);
        assert_eq!(s.alive().len(), 1);
    }

    #[test]
    fn stall_excludes_the_victim() {
        let g = ScheduleGenome::from_genes(vec![Gene::Stall {
            victim: 1,
            slots: 6,
        }]);
        let s = g.compile(3);
        assert!(s.prefix.iter().all(|&p| p != ProcessId(1)));
        assert_eq!(s.prefix.len(), 6);
    }

    #[test]
    fn stall_with_one_alive_falls_back_to_that_process() {
        let g = ScheduleGenome::from_genes(vec![Gene::Stall {
            victim: 0,
            slots: 3,
        }]);
        let s = g.compile(1);
        assert_eq!(s.prefix, vec![ProcessId(0); 3]);
    }

    #[test]
    fn tail_round_robins_over_alive_forever() {
        let g = ScheduleGenome::from_genes(vec![Gene::Crash { victim: 1 }]);
        let mut s = g.compile(3);
        assert_eq!(s.prefix_len(), 0);
        let picked: Vec<ProcessId> = (0..5).map(|_| s.next_pid().unwrap()).collect();
        assert_eq!(
            picked,
            vec![
                ProcessId(0),
                ProcessId(2),
                ProcessId(0),
                ProcessId(2),
                ProcessId(0)
            ]
        );
    }

    #[test]
    fn mutate_keeps_genomes_compilable() {
        let mut r = rng(9);
        let mut g = ScheduleGenome::random(4, &mut r);
        for _ in 0..100 {
            g = g.mutate(4, &mut r);
            assert!(!g.genes().is_empty());
            let s = g.compile(4);
            assert!(!s.alive().is_empty());
        }
    }

    #[test]
    fn base_pool_never_draws_environment_genes() {
        // The non-extended pool must keep the exact pre-existing gene
        // distribution: campaign digests replay its randomness stream.
        let mut r = rng(11);
        for _ in 0..200 {
            let g = ScheduleGenome::random(4, &mut r);
            assert!(!g
                .genes()
                .iter()
                .any(|g| matches!(g, Gene::Adversary { .. } | Gene::Semantics { .. })));
            assert_eq!(g.environment(), Environment::default());
        }
    }

    #[test]
    fn environment_genes_emit_no_slots_and_last_one_wins() {
        let g = ScheduleGenome::from_genes(vec![
            Gene::Adversary {
                strength: AdversaryStrength::Late,
            },
            Gene::RoundRobin { rounds: 1 },
            Gene::Semantics {
                semantics: RegisterSemantics::Regular(Resolution::AlwaysOld),
            },
            Gene::Adversary {
                strength: AdversaryStrength::Adaptive,
            },
        ]);
        let s = g.compile(3);
        assert_eq!(s.prefix_len(), 3, "env genes add no slots");
        let env = g.environment();
        assert_eq!(env.strength, AdversaryStrength::Adaptive);
        assert_eq!(
            env.semantics,
            RegisterSemantics::Regular(Resolution::AlwaysOld)
        );
    }

    #[test]
    fn extended_pool_eventually_draws_environment_genes() {
        let mut r = rng(13);
        let mut saw_adversary = false;
        let mut saw_semantics = false;
        for _ in 0..100 {
            let g = ScheduleGenome::random_extended(4, &mut r);
            for gene in g.genes() {
                match gene {
                    Gene::Adversary { .. } => saw_adversary = true,
                    Gene::Semantics { .. } => saw_semantics = true,
                    _ => {}
                }
            }
            // Every extended genome must still compile and run.
            let s = g.compile(4);
            assert!(!s.alive().is_empty());
        }
        assert!(saw_adversary && saw_semantics);
    }

    #[test]
    fn extended_mutation_keeps_genomes_compilable() {
        let mut r = rng(17);
        let mut g = ScheduleGenome::random_extended(4, &mut r);
        for _ in 0..100 {
            g = g.mutate_extended(4, &mut r);
            assert!(!g.genes().is_empty());
            let s = g.compile(4);
            assert!(!s.alive().is_empty());
        }
    }

    #[test]
    fn solo_and_block_target_alive_processes_only() {
        let g = ScheduleGenome::from_genes(vec![
            Gene::Crash { victim: 0 },
            Gene::Solo { pid: 0, slots: 2 },
            Gene::Block {
                seed: 5,
                per_proc: 1,
            },
        ]);
        let s = g.compile(2);
        assert_eq!(s.prefix, vec![ProcessId(1); 3]);
    }
}

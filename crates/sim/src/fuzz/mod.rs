//! Coverage-guided fuzzing of oblivious adversary schedules.
//!
//! The fuzzer evolves [`ScheduleGenome`]s — short programs in a small
//! strategy language (round-robin, seeded random interleave, block
//! phases, persona-targeting solo bursts, front-runner stalling, crash
//! injection) — guided by a coverage map over protocol-state
//! fingerprints. Evaluation of a candidate is *pure* and lives with the
//! caller (it needs a concrete protocol); this module owns proposal,
//! coverage bookkeeping, and the corpus, in a strict
//! propose → evaluate → absorb cycle:
//!
//! 1. [`Fuzzer::propose`] draws a generation of candidate genomes
//!    (mutants of corpus entries once coverage exists, fresh random
//!    genomes otherwise).
//! 2. The caller evaluates each candidate — typically in parallel,
//!    since evaluation touches no fuzzer state — producing an
//!    [`Evaluation`] per candidate.
//! 3. [`Fuzzer::absorb`] folds evaluations back in **proposal order**,
//!    which keeps the whole loop byte-identical regardless of worker
//!    thread count.
//!
//! Violations carry the exact charged slot script of the offending run
//! and (when the caller could reproduce and shrink it) a 1-minimal
//! script replayable with
//! [`FixedSchedule::from_indices`](crate::schedule::FixedSchedule).

mod corpus;
mod coverage;
mod genome;

use std::fmt;

pub use corpus::{Corpus, CorpusEntry};
pub use coverage::{interleaving_signature, CoverageMap, FingerprintHasher};
pub use genome::{Environment, Gene, GenomeSchedule, ScheduleGenome};

use crate::rng::Xoshiro256StarStar;

/// The caller-produced verdict on one candidate schedule.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Coverage fingerprint of the run (see
    /// [`FingerprintHasher`]).
    pub fingerprint: u64,
    /// The charged process-id sequence the run actually executed.
    pub script: Vec<usize>,
    /// A property failure, if the run violated one.
    pub failure: Option<FuzzFailure>,
}

/// A property failure found while evaluating a schedule.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// What went wrong (the property's error message).
    pub message: String,
    /// The 1-minimal replay script, when the failure reproduced under
    /// deterministic replay of the charged slot sequence. `None` means
    /// the violation depends on the infinite schedule tail (e.g. a
    /// slot-limit hang) and is reported unshrunk.
    pub shrunk: Option<Vec<usize>>,
}

/// A recorded violation: the genome, the original charged script, and
/// the failure (with its shrunk replay script when available).
#[derive(Debug, Clone)]
pub struct FuzzViolation {
    /// The genome whose compiled schedule produced the violation.
    pub genome: ScheduleGenome,
    /// The charged process-id sequence of the violating run.
    pub script: Vec<usize>,
    /// The failure details.
    pub failure: FuzzFailure,
}

impl fmt::Display for FuzzViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fuzz violation: {}", self.failure.message)?;
        writeln!(f, "genome: {:?}", self.genome.genes())?;
        match &self.failure.shrunk {
            Some(script) => write!(
                f,
                "replay with: FixedSchedule::from_indices({script:?}) (shrunk from {} slots)",
                self.script.len()
            ),
            None => write!(
                f,
                "not reproducible from the finite script alone; original charged script \
                 ({} slots): {:?}",
                self.script.len(),
                self.script
            ),
        }
    }
}

/// The coverage-guided schedule fuzzer for one protocol instance size.
///
/// # Examples
///
/// ```
/// use sift_sim::fuzz::{Evaluation, Fuzzer};
///
/// let mut fuzzer = Fuzzer::new(4, 42);
/// let generation = fuzzer.propose(8);
/// assert_eq!(generation.len(), 8);
/// for (i, genome) in generation.into_iter().enumerate() {
///     // A real caller runs the compiled schedule through the Engine;
///     // here the "fingerprint" is just the candidate index.
///     let eval = Evaluation {
///         fingerprint: (i as u64) / 2,
///         script: vec![0],
///         failure: None,
///     };
///     fuzzer.absorb(genome, eval);
/// }
/// assert_eq!(fuzzer.evaluated(), 8);
/// assert_eq!(fuzzer.coverage(), 4); // fingerprints 0..4, each seen twice
/// assert_eq!(fuzzer.corpus().len(), 4);
/// ```
#[derive(Debug)]
pub struct Fuzzer {
    n: usize,
    rng: Xoshiro256StarStar,
    coverage: CoverageMap,
    corpus: Corpus,
    violations: Vec<FuzzViolation>,
    evaluated: usize,
    extended: bool,
}

impl Fuzzer {
    /// Creates a fuzzer for `n`-process schedules, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one process");
        Self {
            n,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            coverage: CoverageMap::new(),
            corpus: Corpus::new(),
            violations: Vec::new(),
            evaluated: 0,
            extended: false,
        }
    }

    /// Switches proposal to the extended gene pool (environment genes:
    /// adversary strength, register semantics). Off by default — the
    /// base pool's randomness stream is pinned by campaign digests.
    pub fn with_extended_genes(mut self, extended: bool) -> Self {
        self.extended = extended;
        self
    }

    /// Number of processes candidate schedules are compiled for.
    pub fn process_count(&self) -> usize {
        self.n
    }

    /// Draws the next generation of candidate genomes.
    ///
    /// While the corpus is empty every candidate is a fresh random
    /// genome; afterwards each candidate is, with equal probability, a
    /// mutant of a uniformly chosen corpus entry or fresh random.
    pub fn propose(&mut self, count: usize) -> Vec<ScheduleGenome> {
        (0..count)
            .map(|_| {
                if self.corpus.is_empty() || self.rng.coin() {
                    if self.extended {
                        ScheduleGenome::random_extended(self.n, &mut self.rng)
                    } else {
                        ScheduleGenome::random(self.n, &mut self.rng)
                    }
                } else {
                    let at = self.rng.range_u64(self.corpus.len() as u64) as usize;
                    let genome = &self.corpus.entries()[at].genome;
                    if self.extended {
                        genome.mutate_extended(self.n, &mut self.rng)
                    } else {
                        genome.mutate(self.n, &mut self.rng)
                    }
                }
            })
            .collect()
    }

    /// Folds one evaluation back into coverage, corpus, and violations.
    ///
    /// Must be called in proposal order (candidate `i` of a generation
    /// before candidate `i + 1`) for reproducibility; evaluations
    /// themselves may have been computed in parallel.
    pub fn absorb(&mut self, genome: ScheduleGenome, eval: Evaluation) {
        self.evaluated += 1;
        if self.coverage.observe(eval.fingerprint) {
            self.corpus.push(CorpusEntry {
                genome: genome.clone(),
                script: eval.script.clone(),
                fingerprint: eval.fingerprint,
            });
        }
        if let Some(failure) = eval.failure {
            self.violations.push(FuzzViolation {
                genome,
                script: eval.script,
                failure,
            });
        }
    }

    /// Number of distinct coverage fingerprints observed.
    pub fn coverage(&self) -> usize {
        self.coverage.len()
    }

    /// The kept coverage-novel schedules.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// All recorded violations, in evaluation order.
    pub fn violations(&self) -> &[FuzzViolation] {
        &self.violations
    }

    /// Total number of evaluations absorbed.
    pub fn evaluated(&self) -> usize {
        self.evaluated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposals_are_deterministic_for_a_seed() {
        let mut a = Fuzzer::new(5, 77);
        let mut b = Fuzzer::new(5, 77);
        assert_eq!(a.propose(10), b.propose(10));
        let mut c = Fuzzer::new(5, 78);
        assert_ne!(a.propose(10), c.propose(10));
    }

    #[test]
    fn absorb_keeps_only_novel_fingerprints() {
        let mut fuzzer = Fuzzer::new(3, 1);
        for genome in fuzzer.propose(4) {
            fuzzer.absorb(
                genome,
                Evaluation {
                    fingerprint: 9,
                    script: vec![0, 1],
                    failure: None,
                },
            );
        }
        assert_eq!(fuzzer.evaluated(), 4);
        assert_eq!(fuzzer.coverage(), 1);
        assert_eq!(fuzzer.corpus().len(), 1);
        assert!(fuzzer.violations().is_empty());
    }

    #[test]
    fn absorb_records_violations() {
        let mut fuzzer = Fuzzer::new(3, 2);
        let genome = fuzzer.propose(1).pop().unwrap();
        fuzzer.absorb(
            genome,
            Evaluation {
                fingerprint: 1,
                script: vec![0, 0, 1],
                failure: Some(FuzzFailure {
                    message: "steps bound exceeded".into(),
                    shrunk: Some(vec![0, 1]),
                }),
            },
        );
        assert_eq!(fuzzer.violations().len(), 1);
        let printed = fuzzer.violations()[0].to_string();
        assert!(printed.contains("steps bound exceeded"));
        assert!(printed.contains("FixedSchedule::from_indices([0, 1])"));
    }

    #[test]
    fn unshrunk_violations_print_the_original_script() {
        let mut fuzzer = Fuzzer::new(2, 3);
        let genome = fuzzer.propose(1).pop().unwrap();
        fuzzer.absorb(
            genome,
            Evaluation {
                fingerprint: 2,
                script: vec![1, 0],
                failure: Some(FuzzFailure {
                    message: "slot limit hit".into(),
                    shrunk: None,
                }),
            },
        );
        let printed = fuzzer.violations()[0].to_string();
        assert!(printed.contains("not reproducible"));
        assert!(printed.contains("[1, 0]"));
    }

    #[test]
    fn corpus_feedback_changes_proposals() {
        // After a corpus entry exists, the proposal stream diverges from
        // the corpus-free stream of the same seed (mutation draws).
        let mut with_corpus = Fuzzer::new(4, 5);
        let mut without = Fuzzer::new(4, 5);
        let genome = with_corpus.propose(1).pop().unwrap();
        let _ = without.propose(1);
        with_corpus.absorb(
            genome,
            Evaluation {
                fingerprint: 11,
                script: vec![0],
                failure: None,
            },
        );
        // Both rngs are in the same state; only corpus contents differ.
        let a = with_corpus.propose(12);
        let b = without.propose(12);
        assert_ne!(a, b);
    }
}

//! The fuzzer corpus: coverage-novel schedules kept for further
//! mutation and for cross-substrate differential replay.

use crate::fuzz::genome::ScheduleGenome;

/// One kept schedule: the genome that produced it, the exact charged
/// slot script its evaluation executed (replayable with
/// [`FixedSchedule::from_indices`](crate::schedule::FixedSchedule)),
/// and the fingerprint that made it novel.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The genome the schedule was compiled from.
    pub genome: ScheduleGenome,
    /// The charged process-id sequence of the evaluated run.
    pub script: Vec<usize>,
    /// The coverage fingerprint of the evaluated run.
    pub fingerprint: u64,
}

/// An insertion-ordered collection of coverage-novel schedules.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a novel entry.
    pub fn push(&mut self, entry: CorpusEntry) {
        self.entries.push(entry);
    }

    /// All entries, in insertion order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of kept schedules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing was kept yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::genome::Gene;

    #[test]
    fn corpus_preserves_insertion_order() {
        let mut corpus = Corpus::new();
        assert!(corpus.is_empty());
        for fp in [3u64, 1, 2] {
            corpus.push(CorpusEntry {
                genome: ScheduleGenome::from_genes(vec![Gene::RoundRobin { rounds: 1 }]),
                script: vec![0],
                fingerprint: fp,
            });
        }
        assert_eq!(corpus.len(), 3);
        let fps: Vec<u64> = corpus.entries().iter().map(|e| e.fingerprint).collect();
        assert_eq!(fps, vec![3, 1, 2]);
    }
}

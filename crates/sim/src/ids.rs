//! Typed identifiers for processes and shared-memory objects.
//!
//! All identifiers are plain indices wrapped in newtypes so that a register
//! id can never be confused with a snapshot id at compile time
//! (C-NEWTYPE). Objects are allocated through
//! [`LayoutBuilder`](crate::layout::LayoutBuilder), which hands out dense
//! ids starting at zero.

use core::fmt;

/// Identifier of a simulated process, in `0..n`.
///
/// # Examples
///
/// ```
/// use sift_sim::ProcessId;
/// let p = ProcessId(3);
/// assert_eq!(p.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns the underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

macro_rules! object_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) usize);

        impl $name {
            /// Returns the underlying dense index.
            pub fn index(self) -> usize {
                self.0
            }

            /// Builds an id from a raw index.
            ///
            /// Intended for runtimes (such as `sift-shmem`) that mirror a
            /// [`Layout`](crate::layout::Layout) into their own object
            /// arenas; indices must come from the same layout.
            pub fn from_index(index: usize) -> Self {
                Self(index)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

object_id!(
    /// Identifier of a multi-writer multi-reader atomic register.
    RegisterId,
    "r"
);

object_id!(
    /// Identifier of an atomic snapshot object.
    SnapshotId,
    "s"
);

object_id!(
    /// Identifier of a max register (see paper footnote 1).
    MaxRegisterId,
    "m"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(ProcessId(2).to_string(), "p2");
        assert_eq!(RegisterId(0).to_string(), "r0");
        assert_eq!(SnapshotId(1).to_string(), "s1");
        assert_eq!(MaxRegisterId(7).to_string(), "m7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(RegisterId(1));
        set.insert(RegisterId(1));
        set.insert(RegisterId(2));
        assert_eq!(set.len(), 2);
        assert!(RegisterId(1) < RegisterId(2));
    }

    #[test]
    fn from_index_round_trips() {
        assert_eq!(RegisterId::from_index(9).index(), 9);
        assert_eq!(SnapshotId::from_index(3).index(), 3);
        assert_eq!(MaxRegisterId::from_index(4).index(), 4);
    }
}

//! Atomic snapshot objects for the simulator.
//!
//! A snapshot object holds one component per process. `update(i, v)` sets
//! component `i`; `scan()` returns an atomic view of all components. In
//! the paper's *unit-cost snapshot model* (§2) a scan costs one step; the
//! [`Memory`](crate::memory::Memory) cost model can alternatively charge
//! `n` steps per scan to model a register-based implementation.
//!
//! Scans are O(1) amortized: the component vector lives behind an
//! [`Arc`] and scans hand out shared views; an update copies the vector
//! only if a view from an earlier scan is still alive (copy-on-write).

use std::sync::Arc;

use crate::op::ScanView;
use crate::value::Value;

/// An atomic snapshot object with a fixed number of components.
///
/// # Examples
///
/// ```
/// use sift_sim::snapshot::SnapshotObject;
/// let mut s = SnapshotObject::new(3);
/// s.update(1, "b");
/// let view = s.scan();
/// assert_eq!(view[1], Some("b"));
/// assert_eq!(view[0], None);
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotObject<V> {
    /// Lazily allocated so that layouts with many large snapshot objects
    /// (e.g. one per round per consensus phase) only pay for the rounds
    /// actually reached.
    components: Option<Arc<Vec<Option<V>>>>,
    len: usize,
    updates: u64,
    scans: u64,
}

impl<V: Value> SnapshotObject<V> {
    /// Creates a snapshot object with `len` components, all ⊥.
    pub fn new(len: usize) -> Self {
        Self {
            components: None,
            len,
            updates: 0,
            scans: 0,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the object has zero components.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn materialize(&mut self) -> &mut Arc<Vec<Option<V>>> {
        if self.components.is_none() {
            self.components = Some(Arc::new(vec![None; self.len]));
        }
        self.components.as_mut().expect("just materialized")
    }

    /// Sets component `component` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `component >= self.len()`.
    pub fn update(&mut self, component: usize, value: V) {
        assert!(
            component < self.len,
            "snapshot component {component} out of range 0..{}",
            self.len
        );
        self.updates += 1;
        let arc = self.materialize();
        Arc::make_mut(arc)[component] = Some(value);
    }

    /// Returns an atomic view of all components.
    pub fn scan(&mut self) -> ScanView<V> {
        self.scans += 1;
        let arc = self.materialize();
        ScanView::new(Arc::clone(arc))
    }

    /// Number of update operations executed.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Number of scan operations executed.
    pub fn scan_count(&self) -> u64 {
        self.scans
    }

    /// Returns `true` if the component vector has been allocated.
    pub fn is_materialized(&self) -> bool {
        self.components.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_then_scan() {
        let mut s = SnapshotObject::new(4);
        s.update(2, 9u32);
        let v = s.scan();
        assert_eq!(&v[..], &[None, None, Some(9), None]);
    }

    #[test]
    fn scans_are_immutable_views() {
        let mut s = SnapshotObject::new(2);
        s.update(0, 1u32);
        let v1 = s.scan();
        s.update(1, 2u32);
        let v2 = s.scan();
        // The old view must not observe the later update (atomicity).
        assert_eq!(&v1[..], &[Some(1), None]);
        assert_eq!(&v2[..], &[Some(1), Some(2)]);
    }

    #[test]
    fn views_nest() {
        // Views from successive scans form a chain: each is a sub-view of
        // the next (monotone component-wise, since components here are
        // written at most once).
        let mut s = SnapshotObject::new(3);
        let mut views = Vec::new();
        for i in 0..3 {
            s.update(i, i as u32);
            views.push(s.scan());
        }
        for w in views.windows(2) {
            for (earlier, later) in w[0].iter().zip(w[1].iter()) {
                if earlier.is_some() {
                    assert_eq!(earlier, later);
                }
            }
        }
    }

    #[test]
    fn lazy_materialization() {
        let s: SnapshotObject<u64> = SnapshotObject::new(1_000_000);
        assert!(!s.is_materialized());
        let mut s = s;
        let _ = s.scan();
        assert!(s.is_materialized());
    }

    #[test]
    fn counts_ops() {
        let mut s = SnapshotObject::new(2);
        s.update(0, 1u8);
        let _ = s.scan();
        let _ = s.scan();
        assert_eq!(s.update_count(), 1);
        assert_eq!(s.scan_count(), 2);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_out_of_range_panics() {
        let mut s = SnapshotObject::new(2);
        s.update(2, 1u8);
    }
}

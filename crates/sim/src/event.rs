//! Building blocks of the discrete-event engine: packed bitsets, the
//! bucketed slot queue (a single-lane calendar queue over schedule
//! positions), and the arena-backed process table with lazy
//! materialization.
//!
//! The [`Engine`](crate::engine::Engine) used to hold `Vec<Slot<P>>`
//! indexed by process id and pay one virtual `next_pid` call plus one
//! enum-tag match per scheduled slot. The structures here replace that
//! with:
//!
//! * [`BitSet`] — one bit per tracked flag (done processes, schedule
//!   support), 64 processes per word.
//! * [`SlotQueue`] — schedule slots prefetched in flat buckets keyed by
//!   schedule position, so a boxed schedule costs one virtual call per
//!   *bucket* instead of per slot. Bucketing is only enabled when the
//!   schedule declares itself
//!   [`completion_oblivious`](crate::schedule::Schedule::completion_oblivious);
//!   completion-sensitive schedules (e.g.
//!   [`BlockSequential`](crate::schedule::BlockSequential)) fall back to
//!   a bucket of one, which reproduces the legacy pull-per-slot loop
//!   exactly.
//! * [`ProcessTable`] — process state machines live in an arena in
//!   touch order; a dense `ProcessId → slot` table maps ids to arena
//!   slots and a factory materializes never-before-scheduled processes
//!   on first touch, so untouched processes cost four bytes of index
//!   and nothing else.

use crate::ids::ProcessId;
use crate::op::Op;
use crate::process::{Process, Step};
use crate::schedule::Schedule;

/// A packed bitset over `0..len`, used for SoA bookkeeping (finished
/// processes, schedule support) instead of `Vec<bool>`.
///
/// # Examples
///
/// ```
/// use sift_sim::event::BitSet;
/// let mut b = BitSet::new(130);
/// b.set(0);
/// b.set(129);
/// assert!(b.get(0) && b.get(129) && !b.get(64));
/// assert_eq!(b.count_ones(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitset over `0..len`, all bits clear.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set addresses zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grows the addressable range to at least `len` bits (new bits
    /// clear); never shrinks.
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            self.words.resize(len.div_ceil(64), 0);
        }
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// How many slots to prefetch per bucket from a completion-oblivious
/// schedule. One virtual `fill` call amortizes over this many slots;
/// the per-slot termination and budget checks are unaffected.
pub(crate) const BUCKET_SLOTS: usize = 1024;

/// The engine's event queue: schedule slots, prefetched in flat
/// buckets keyed by schedule position (a single-lane calendar queue —
/// schedule time is one-dimensional, so one rotating bucket suffices).
#[derive(Debug)]
pub(crate) struct SlotQueue {
    /// The current bucket of prefetched slots, drained front to back.
    bucket: Vec<ProcessId>,
    /// Next unread index into `bucket`.
    cursor: usize,
    /// Schedule position of `bucket[0]` (the key of the current
    /// bucket; kept for diagnostics and trace alignment).
    base: u64,
    /// Slots fetched per refill: [`BUCKET_SLOTS`] for
    /// completion-oblivious schedules, 1 otherwise.
    width: usize,
    /// The schedule returned `None`; once the bucket drains the queue
    /// is exhausted for good.
    exhausted: bool,
}

impl SlotQueue {
    pub(crate) fn new(completion_oblivious: bool) -> Self {
        let width = if completion_oblivious {
            BUCKET_SLOTS
        } else {
            1
        };
        Self {
            bucket: Vec::with_capacity(width),
            cursor: 0,
            base: 0,
            width,
            exhausted: false,
        }
    }

    /// Pops the next scheduled process id, refilling the bucket from
    /// `schedule` when drained. `None` means the schedule is exhausted.
    pub(crate) fn pop(&mut self, schedule: &mut impl Schedule) -> Option<ProcessId> {
        if self.cursor == self.bucket.len() {
            if self.exhausted {
                return None;
            }
            self.base += self.bucket.len() as u64;
            self.bucket.clear();
            self.cursor = 0;
            self.exhausted = schedule.fill(&mut self.bucket, self.width);
            if self.bucket.is_empty() {
                return None;
            }
        }
        let pid = self.bucket[self.cursor];
        self.cursor += 1;
        Some(pid)
    }

    /// Schedule position of the next slot to be served (equivalently,
    /// slots served so far) — the calendar key of the queue head.
    #[cfg(test)]
    pub(crate) fn pop_count(&self) -> u64 {
        self.base + self.cursor as u64
    }
}

/// Sentinel in the dense pid → slot table: process not yet
/// materialized.
const UNMATERIALIZED: u32 = u32::MAX;

/// Arena-backed process storage with a dense `ProcessId → slot` table.
///
/// Fields are structure-of-arrays over arena slots: the state machines,
/// their pending operations, their outputs, and a done bitset live in
/// parallel arrays indexed by slot. Slots are assigned in touch order;
/// in eager mode (every process materialized at construction) slot `i`
/// is process `i`, which keeps reports and adaptive-adversary views in
/// the legacy pid order.
pub(crate) struct ProcessTable<P: Process> {
    n: usize,
    /// Dense pid → arena slot; `UNMATERIALIZED` for untouched pids.
    pid_to_slot: Vec<u32>,
    /// Arena slot → pid (touch order).
    pids: Vec<ProcessId>,
    /// The state machines, one per materialized slot.
    procs: Vec<P>,
    /// Pending operation per slot (`None` once finished).
    pending: Vec<Option<Op<P::Value>>>,
    /// Output per slot (`Some` once finished).
    outputs: Vec<Option<P::Output>>,
    /// Finished flags, one bit per slot.
    done: BitSet,
    /// Materialized-but-unfinished count.
    live: usize,
    /// Builds process `pid` on first touch (lazy mode); `None` in eager
    /// mode, where construction materializes everything up front.
    factory: Option<Box<dyn FnMut(ProcessId) -> P>>,
}

/// What touching a pid produced.
pub(crate) struct Touched {
    /// The arena slot for the pid.
    pub slot: usize,
    /// The touch materialized the process and its very first
    /// `step(None)` returned `Done` (it finished without taking any
    /// shared-memory operation).
    pub instantly_done: bool,
}

impl<P: Process> ProcessTable<P> {
    /// Eager construction: materializes every process now, in pid
    /// order, exactly like the legacy engine did.
    pub(crate) fn eager(processes: Vec<P>) -> Self {
        let n = processes.len();
        let mut table = Self::with_capacity(n, n, None);
        for (i, proc) in processes.into_iter().enumerate() {
            table.materialize(ProcessId(i), proc);
        }
        table
    }

    /// Lazy construction: processes are built by `factory` on first
    /// touch. Untouched processes cost one `u32` of index space.
    pub(crate) fn lazy(n: usize, factory: Box<dyn FnMut(ProcessId) -> P>) -> Self {
        Self::with_capacity(n, 0, Some(factory))
    }

    fn with_capacity(
        n: usize,
        arena: usize,
        factory: Option<Box<dyn FnMut(ProcessId) -> P>>,
    ) -> Self {
        Self {
            n,
            pid_to_slot: vec![UNMATERIALIZED; n],
            pids: Vec::with_capacity(arena),
            procs: Vec::with_capacity(arena),
            pending: Vec::with_capacity(arena),
            outputs: Vec::with_capacity(arena),
            done: BitSet::new(0),
            live: 0,
            factory,
        }
    }

    fn materialize(&mut self, pid: ProcessId, mut proc: P) -> Touched {
        let slot = self.procs.len();
        let instantly_done = match proc.step(None) {
            Step::Issue(op) => {
                self.pending.push(Some(op));
                self.outputs.push(None);
                self.live += 1;
                false
            }
            Step::Done(output) => {
                self.pending.push(None);
                self.outputs.push(Some(output));
                true
            }
        };
        self.procs.push(proc);
        self.pids.push(pid);
        self.done.grow(slot + 1);
        if instantly_done {
            self.done.set(slot);
        }
        self.pid_to_slot[pid.index()] = slot as u32;
        Touched {
            slot,
            instantly_done,
        }
    }

    /// Resolves `pid` to its arena slot, materializing it on first
    /// touch in lazy mode.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub(crate) fn touch(&mut self, pid: ProcessId) -> Touched {
        assert!(pid.index() < self.n, "schedule produced out-of-range {pid}");
        let slot = self.pid_to_slot[pid.index()];
        if slot != UNMATERIALIZED {
            return Touched {
                slot: slot as usize,
                instantly_done: false,
            };
        }
        let factory = self
            .factory
            .as_mut()
            .expect("eager table materializes every pid at construction");
        let proc = factory(pid);
        self.materialize(pid, proc)
    }

    /// Number of processes (materialized or not).
    pub(crate) fn n(&self) -> usize {
        self.n
    }

    /// Number of materialized processes.
    pub(crate) fn materialized(&self) -> usize {
        self.procs.len()
    }

    /// Materialized-but-unfinished count.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// `true` once every process is materialized and finished.
    pub(crate) fn all_done(&self) -> bool {
        self.live == 0 && self.procs.len() == self.n
    }

    /// `true` if the table was built lazily (with a factory).
    pub(crate) fn is_lazy(&self) -> bool {
        self.factory.is_some()
    }

    /// Whether `pid` is materialized and finished (untouched processes
    /// are by definition unfinished).
    pub(crate) fn is_pid_done(&self, pid: ProcessId) -> bool {
        match self.pid_to_slot.get(pid.index()) {
            Some(&slot) if slot != UNMATERIALIZED => self.done.get(slot as usize),
            _ => false,
        }
    }

    /// The arena slot of `pid` if it is materialized and still running.
    pub(crate) fn running_slot(&self, pid: ProcessId) -> Option<usize> {
        match self.pid_to_slot.get(pid.index()) {
            Some(&slot) if slot != UNMATERIALIZED && !self.done.get(slot as usize) => {
                Some(slot as usize)
            }
            _ => None,
        }
    }

    /// Whether the process in `slot` has finished.
    pub(crate) fn is_done(&self, slot: usize) -> bool {
        self.done.get(slot)
    }

    /// Takes the pending operation of the running process in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is finished (finished slots are skipped, not
    /// advanced).
    pub(crate) fn take_pending(&mut self, slot: usize) -> Op<P::Value> {
        self.pending[slot]
            .take()
            .expect("running process always has a pending op")
    }

    /// Resumes the process in `slot` with `result`; returns `true` if
    /// it finished.
    pub(crate) fn resume(&mut self, slot: usize, result: crate::op::OpResult<P::Value>) -> bool {
        match self.procs[slot].step(Some(result)) {
            Step::Issue(op) => {
                self.pending[slot] = Some(op);
                false
            }
            Step::Done(output) => {
                self.outputs[slot] = Some(output);
                self.done.set(slot);
                self.live -= 1;
                true
            }
        }
    }

    /// Iterates materialized slots as `(slot, pid)` in arena order.
    pub(crate) fn slots(&self) -> impl Iterator<Item = (usize, ProcessId)> + '_ {
        self.pids.iter().enumerate().map(|(s, &pid)| (s, pid))
    }

    /// The live processes with their pending operations, in arena
    /// order, for the adaptive adversary's view.
    pub(crate) fn live_view(&self) -> Vec<(ProcessId, &P, &Op<P::Value>)> {
        self.slots()
            .filter(|&(slot, _)| !self.done.get(slot))
            .map(|(slot, pid)| {
                (
                    pid,
                    &self.procs[slot],
                    self.pending[slot]
                        .as_ref()
                        .expect("running process has a pending op"),
                )
            })
            .collect()
    }

    /// Tears the table down into `(pid, process, output)` triples in
    /// arena (touch) order.
    pub(crate) fn into_entries(self) -> Vec<(ProcessId, P, Option<P::Output>)> {
        self.pids
            .into_iter()
            .zip(self.procs)
            .zip(self.outputs)
            .map(|((pid, proc), output)| (pid, proc, output))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpResult;
    use crate::schedule::RoundRobin;

    #[test]
    fn bitset_set_get_count() {
        let mut b = BitSet::new(100);
        assert_eq!(b.len(), 100);
        assert!(!b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(99);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(99));
        assert!(!b.get(1) && !b.get(65));
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn bitset_grows_with_clear_bits() {
        let mut b = BitSet::new(1);
        b.set(0);
        b.grow(200);
        assert_eq!(b.len(), 200);
        assert!(b.get(0));
        assert!(!b.get(199));
        b.set(199);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitset_get_out_of_range_panics() {
        BitSet::new(8).get(8);
    }

    #[test]
    fn slot_queue_matches_unbatched_pulls() {
        let mut batched = SlotQueue::new(true);
        let mut unbatched = SlotQueue::new(false);
        let mut a = RoundRobin::new(7);
        let mut b = RoundRobin::new(7);
        for served in 0..3000u64 {
            assert_eq!(batched.pop(&mut a), unbatched.pop(&mut b));
            assert_eq!(batched.pop_count(), served + 1);
        }
    }

    #[test]
    fn slot_queue_drains_finite_schedules() {
        use crate::schedule::FixedSchedule;
        let mut q = SlotQueue::new(true);
        let mut s = FixedSchedule::from_indices([0usize, 1, 0]);
        let drained: Vec<_> = std::iter::from_fn(|| q.pop(&mut s)).collect();
        assert_eq!(drained, vec![ProcessId(0), ProcessId(1), ProcessId(0)]);
        assert_eq!(q.pop(&mut s), None);
    }

    struct Nop(u8);
    impl Process for Nop {
        type Value = u32;
        type Output = u8;
        fn step(&mut self, _prev: Option<OpResult<u32>>) -> Step<u32, u8> {
            Step::Done(self.0)
        }
    }

    #[test]
    fn lazy_table_materializes_on_touch_only() {
        let mut t: ProcessTable<Nop> =
            ProcessTable::lazy(1_000, Box::new(|pid| Nop(pid.index() as u8)));
        assert_eq!(t.materialized(), 0);
        assert!(t.is_lazy());
        let touched = t.touch(ProcessId(17));
        assert!(touched.instantly_done);
        assert_eq!(t.materialized(), 1);
        // Second touch of the same pid is not a materialization.
        let again = t.touch(ProcessId(17));
        assert_eq!(again.slot, touched.slot);
        assert!(!again.instantly_done);
        assert_eq!(t.materialized(), 1);
        assert!(!t.all_done(), "999 processes never materialized");
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn touch_out_of_range_panics() {
        let mut t: ProcessTable<Nop> = ProcessTable::lazy(4, Box::new(|_| Nop(0)));
        t.touch(ProcessId(4));
    }
}

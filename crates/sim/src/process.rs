//! The process abstraction: resumable state machines that issue one
//! shared-memory operation per scheduled step.
//!
//! Protocols are written once as [`Process`] implementations and can then
//! be driven by any runtime: the deterministic simulator
//! ([`Engine`](crate::engine::Engine)) or a threaded runtime over real
//! atomics (`sift-shmem`).

use crate::op::{Op, OpResult};
use crate::value::Value;

/// What a process does next.
#[derive(Debug)]
pub enum Step<V, O> {
    /// Issue one shared-memory operation; the process will be resumed
    /// with its result.
    Issue(Op<V>),
    /// The protocol has finished with `output`. Any further scheduled
    /// slots become free no-ops (§1.1 of the paper).
    Done(O),
}

/// A resumable protocol state machine.
///
/// The driver calls [`step`](Process::step) with `None` once before the
/// process's first scheduled step, and thereafter with `Some(result)` of
/// the previously issued operation. Local computation inside `step` is
/// free; only issued operations cost steps, which matches the model's
/// step accounting.
///
/// # Examples
///
/// A process that writes its input to a register and then reads the
/// register back as its output:
///
/// ```
/// use sift_sim::{Op, OpResult, Process, RegisterId, Step};
///
/// struct WriteThenRead {
///     reg: RegisterId,
///     input: u32,
///     wrote: bool,
/// }
///
/// impl Process for WriteThenRead {
///     type Value = u32;
///     type Output = Option<u32>;
///
///     fn step(&mut self, prev: Option<OpResult<u32>>) -> Step<u32, Option<u32>> {
///         match prev {
///             None => Step::Issue(Op::RegisterWrite(self.reg, self.input)),
///             Some(OpResult::Ack) if !self.wrote => {
///                 self.wrote = true;
///                 Step::Issue(Op::RegisterRead(self.reg))
///             }
///             Some(result) => Step::Done(result.expect_register()),
///             _ => unreachable!(),
///         }
///     }
/// }
/// ```
pub trait Process {
    /// The value type stored in shared memory.
    type Value: Value;
    /// The protocol's return value.
    type Output;

    /// Advances the state machine.
    ///
    /// `prev` is `None` exactly once, before the first operation; after
    /// that it carries the result of the operation issued by the previous
    /// call. Implementations must not be called again after returning
    /// [`Step::Done`].
    fn step(&mut self, prev: Option<OpResult<Self::Value>>) -> Step<Self::Value, Self::Output>;
}

impl<P: Process + ?Sized> Process for Box<P> {
    type Value = P::Value;
    type Output = P::Output;

    fn step(&mut self, prev: Option<OpResult<Self::Value>>) -> Step<Self::Value, Self::Output> {
        (**self).step(prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RegisterId;

    struct Immediate;

    impl Process for Immediate {
        type Value = u32;
        type Output = &'static str;

        fn step(&mut self, _prev: Option<OpResult<u32>>) -> Step<u32, &'static str> {
            Step::Done("done")
        }
    }

    #[test]
    fn boxed_process_delegates() {
        let mut p: Box<dyn Process<Value = u32, Output = &'static str>> = Box::new(Immediate);
        match p.step(None) {
            Step::Done(s) => assert_eq!(s, "done"),
            Step::Issue(_) => panic!("expected immediate completion"),
        }
    }

    struct OneOp {
        reg: RegisterId,
        fired: bool,
    }

    impl Process for OneOp {
        type Value = u32;
        type Output = Option<u32>;

        fn step(&mut self, prev: Option<OpResult<u32>>) -> Step<u32, Option<u32>> {
            if !self.fired {
                self.fired = true;
                Step::Issue(Op::RegisterRead(self.reg))
            } else {
                Step::Done(prev.expect("resumed with a result").expect_register())
            }
        }
    }

    #[test]
    fn issue_then_done() {
        let mut p = OneOp {
            reg: RegisterId(0),
            fired: false,
        };
        assert!(matches!(p.step(None), Step::Issue(Op::RegisterRead(_))));
        assert!(matches!(
            p.step(Some(OpResult::RegisterValue(Some(4)))),
            Step::Done(Some(4))
        ));
    }
}

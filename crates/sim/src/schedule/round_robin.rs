//! The round-robin schedule.

use super::Schedule;
use crate::ids::ProcessId;

/// Cyclic schedule `0, 1, …, n-1, 0, 1, …`, optionally starting at an
/// offset.
///
/// The most benign oblivious adversary: every process advances at the
/// same rate. Useful as the baseline strategy in sweeps.
///
/// # Examples
///
/// ```
/// use sift_sim::schedule::{RoundRobin, Schedule};
/// use sift_sim::ProcessId;
/// let mut s = RoundRobin::new(3);
/// assert_eq!(s.next_pid(), Some(ProcessId(0)));
/// assert_eq!(s.next_pid(), Some(ProcessId(1)));
/// assert_eq!(s.next_pid(), Some(ProcessId(2)));
/// assert_eq!(s.next_pid(), Some(ProcessId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin schedule over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::starting_at(n, 0)
    }

    /// Creates a round-robin schedule starting at process `start % n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn starting_at(n: usize, start: usize) -> Self {
        assert!(n > 0, "round-robin needs at least one process");
        Self { n, next: start % n }
    }
}

impl Schedule for RoundRobin {
    fn next_pid(&mut self) -> Option<ProcessId> {
        let pid = ProcessId(self.next);
        self.next = (self.next + 1) % self.n;
        Some(pid)
    }

    fn support(&self) -> Vec<ProcessId> {
        (0..self.n).map(ProcessId).collect()
    }

    fn completion_oblivious(&self) -> bool {
        // The cyclic order is fixed up front; on_done is ignored.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_through_all() {
        let mut s = RoundRobin::new(4);
        let seq: Vec<usize> = (0..9).map(|_| s.next_pid().unwrap().index()).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3, 0]);
    }

    #[test]
    fn starting_offset_wraps() {
        let mut s = RoundRobin::starting_at(3, 5);
        assert_eq!(s.next_pid().unwrap().index(), 2);
        assert_eq!(s.next_pid().unwrap().index(), 0);
    }

    #[test]
    fn support_is_everyone() {
        let s = RoundRobin::new(3);
        assert_eq!(s.support().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_panics() {
        RoundRobin::new(0);
    }
}

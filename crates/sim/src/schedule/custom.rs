//! Explicit schedules for tests and hand-crafted adversaries.

use super::Schedule;
use crate::ids::ProcessId;

/// A finite, fully explicit schedule.
///
/// The run ends when the sequence is exhausted; processes that have not
/// finished by then are reported as pending by the engine. Useful for
/// unit tests that pin down exact interleavings.
///
/// # Examples
///
/// ```
/// use sift_sim::schedule::{FixedSchedule, Schedule};
/// use sift_sim::ProcessId;
/// let mut s = FixedSchedule::new(vec![ProcessId(0), ProcessId(1), ProcessId(0)]);
/// assert_eq!(s.next_pid(), Some(ProcessId(0)));
/// assert_eq!(s.next_pid(), Some(ProcessId(1)));
/// assert_eq!(s.next_pid(), Some(ProcessId(0)));
/// assert_eq!(s.next_pid(), None);
/// ```
#[derive(Debug, Clone)]
pub struct FixedSchedule {
    slots: std::vec::IntoIter<ProcessId>,
}

impl FixedSchedule {
    /// Creates a schedule from an explicit slot sequence.
    pub fn new(slots: Vec<ProcessId>) -> Self {
        Self {
            slots: slots.into_iter(),
        }
    }

    /// Builds a schedule from raw indices.
    pub fn from_indices(slots: impl IntoIterator<Item = usize>) -> Self {
        Self::new(slots.into_iter().map(ProcessId).collect())
    }
}

impl Schedule for FixedSchedule {
    fn next_pid(&mut self) -> Option<ProcessId> {
        self.slots.next()
    }

    fn completion_oblivious(&self) -> bool {
        // The slot list is literally fixed in advance.
        true
    }
}

/// Repeats a finite pattern forever.
///
/// # Examples
///
/// ```
/// use sift_sim::schedule::{RepeatingSchedule, Schedule};
/// let mut s = RepeatingSchedule::from_indices([0, 0, 1]);
/// let seq: Vec<usize> = (0..6).map(|_| s.next_pid().unwrap().index()).collect();
/// assert_eq!(seq, vec![0, 0, 1, 0, 0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct RepeatingSchedule {
    pattern: Vec<ProcessId>,
    pos: usize,
}

impl RepeatingSchedule {
    /// Creates a repeating schedule from a non-empty pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is empty.
    pub fn new(pattern: Vec<ProcessId>) -> Self {
        assert!(!pattern.is_empty(), "pattern must be non-empty");
        Self { pattern, pos: 0 }
    }

    /// Builds a repeating schedule from raw indices.
    pub fn from_indices(pattern: impl IntoIterator<Item = usize>) -> Self {
        Self::new(pattern.into_iter().map(ProcessId).collect())
    }
}

impl Schedule for RepeatingSchedule {
    fn next_pid(&mut self) -> Option<ProcessId> {
        let pid = self.pattern[self.pos];
        self.pos = (self.pos + 1) % self.pattern.len();
        Some(pid)
    }

    fn support(&self) -> Vec<ProcessId> {
        let mut pids = self.pattern.clone();
        pids.sort_unstable();
        pids.dedup();
        pids
    }

    fn completion_oblivious(&self) -> bool {
        // The pattern repeats regardless of completions.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_exhausts() {
        let mut s = FixedSchedule::from_indices([2, 1]);
        assert_eq!(s.next_pid().unwrap().index(), 2);
        assert_eq!(s.next_pid().unwrap().index(), 1);
        assert_eq!(s.next_pid(), None);
        assert!(s.support().is_empty());
    }

    #[test]
    fn repeating_cycles_and_supports_unique_pids() {
        let mut s = RepeatingSchedule::from_indices([1, 1, 3]);
        let seq: Vec<usize> = (0..7).map(|_| s.next_pid().unwrap().index()).collect();
        assert_eq!(seq, vec![1, 1, 3, 1, 1, 3, 1]);
        let support: Vec<usize> = s.support().iter().map(|p| p.index()).collect();
        assert_eq!(support, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_panics() {
        RepeatingSchedule::new(Vec::new());
    }
}

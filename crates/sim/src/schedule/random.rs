//! Randomized oblivious schedules.

use super::Schedule;
use crate::ids::ProcessId;
use crate::rng::Xoshiro256StarStar;

/// Uniformly random process each slot.
///
/// The schedule's randomness comes from its own seed, fixed before the
/// run, so it remains oblivious: the sequence of pids is independent of
/// process coins.
///
/// # Examples
///
/// ```
/// use sift_sim::schedule::{RandomInterleave, Schedule};
/// let mut s = RandomInterleave::new(8, 42);
/// for _ in 0..100 {
///     assert!(s.next_pid().unwrap().index() < 8);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RandomInterleave {
    n: usize,
    rng: Xoshiro256StarStar,
}

impl RandomInterleave {
    /// Creates a uniform random schedule over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "random interleave needs at least one process");
        Self {
            n,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }
}

impl Schedule for RandomInterleave {
    fn next_pid(&mut self) -> Option<ProcessId> {
        Some(ProcessId(self.rng.range_u64(self.n as u64) as usize))
    }

    fn support(&self) -> Vec<ProcessId> {
        (0..self.n).map(ProcessId).collect()
    }

    fn completion_oblivious(&self) -> bool {
        // Every slot is an independent draw from the schedule seed.
        true
    }
}

/// Random-permutation blocks: each pass schedules every process for
/// `block_len` consecutive slots, in a freshly shuffled order.
///
/// Sits between [`RoundRobin`](super::RoundRobin) (block length 1) and
/// [`BlockSequential`](super::BlockSequential) (blocks long enough to run
/// solo to completion): an adversary that creates long solo runs while
/// still interleaving rounds.
#[derive(Debug, Clone)]
pub struct BlockRotation {
    n: usize,
    block_len: usize,
    order: Vec<usize>,
    pos: usize,
    remaining_in_block: usize,
    rng: Xoshiro256StarStar,
}

impl BlockRotation {
    /// Creates a block-rotation schedule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `block_len == 0`.
    pub fn new(n: usize, block_len: usize, seed: u64) -> Self {
        assert!(n > 0, "block rotation needs at least one process");
        assert!(block_len > 0, "block length must be positive");
        let mut s = Self {
            n,
            block_len,
            order: (0..n).collect(),
            pos: 0,
            remaining_in_block: block_len,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        };
        s.shuffle();
        s
    }

    fn shuffle(&mut self) {
        // Fisher–Yates with the schedule's own generator.
        for i in (1..self.order.len()).rev() {
            let j = self.rng.range_u64((i + 1) as u64) as usize;
            self.order.swap(i, j);
        }
        self.pos = 0;
        self.remaining_in_block = self.block_len;
    }
}

impl Schedule for BlockRotation {
    fn next_pid(&mut self) -> Option<ProcessId> {
        let pid = ProcessId(self.order[self.pos]);
        self.remaining_in_block -= 1;
        if self.remaining_in_block == 0 {
            self.pos += 1;
            self.remaining_in_block = self.block_len;
            if self.pos == self.n {
                self.shuffle();
            }
        }
        Some(pid)
    }

    fn support(&self) -> Vec<ProcessId> {
        (0..self.n).map(ProcessId).collect()
    }

    fn completion_oblivious(&self) -> bool {
        // Pass permutations are drawn from the schedule seed alone.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_interleave_is_deterministic_per_seed() {
        let mut a = RandomInterleave::new(5, 7);
        let mut b = RandomInterleave::new(5, 7);
        for _ in 0..50 {
            assert_eq!(a.next_pid(), b.next_pid());
        }
    }

    #[test]
    fn random_interleave_covers_all_processes() {
        let mut s = RandomInterleave::new(6, 1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[s.next_pid().unwrap().index()] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn block_rotation_runs_blocks() {
        let mut s = BlockRotation::new(3, 4, 2);
        let seq: Vec<usize> = (0..12).map(|_| s.next_pid().unwrap().index()).collect();
        // Each block of 4 consecutive slots is a single process.
        for chunk in seq.chunks(4) {
            assert!(chunk.iter().all(|&p| p == chunk[0]), "{seq:?}");
        }
        // One pass covers all three processes.
        let mut pass: Vec<usize> = seq.chunks(4).map(|c| c[0]).collect();
        pass.sort_unstable();
        assert_eq!(pass, vec![0, 1, 2]);
    }

    #[test]
    fn block_rotation_reshuffles_between_passes() {
        let mut s = BlockRotation::new(16, 1, 3);
        let pass1: Vec<usize> = (0..16).map(|_| s.next_pid().unwrap().index()).collect();
        let pass2: Vec<usize> = (0..16).map(|_| s.next_pid().unwrap().index()).collect();
        let mut sorted1 = pass1.clone();
        sorted1.sort_unstable();
        assert_eq!(sorted1, (0..16).collect::<Vec<_>>());
        assert_ne!(pass1, pass2, "passes should be independently shuffled");
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_panics() {
        RandomInterleave::new(0, 0);
    }
}

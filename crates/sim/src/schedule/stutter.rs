//! The stutter schedule: one designated slow process.

use super::Schedule;
use crate::ids::ProcessId;

/// Round-robin over the fast processes, with one slow process scheduled
/// only once every `period` slots.
///
/// Models a straggler: the adversary starves one process to see whether
/// the protocol's outcome or the others' step counts depend on it.
///
/// # Examples
///
/// ```
/// use sift_sim::schedule::{Schedule, Stutter};
/// use sift_sim::ProcessId;
/// let mut s = Stutter::new(3, ProcessId(2), 4);
/// let seq: Vec<usize> = (0..8).map(|_| s.next_pid().unwrap().index()).collect();
/// assert_eq!(seq, vec![0, 1, 0, 2, 1, 0, 1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Stutter {
    n: usize,
    slow: ProcessId,
    period: u64,
    slot: u64,
    fast_next: usize,
}

impl Stutter {
    /// Creates a stutter schedule over `n` processes, starving `slow` to
    /// one slot in every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `slow.index() >= n`, or `period == 0`.
    pub fn new(n: usize, slow: ProcessId, period: u64) -> Self {
        assert!(n >= 2, "stutter needs at least two processes");
        assert!(slow.index() < n, "slow process out of range");
        assert!(period > 0, "period must be positive");
        Self {
            n,
            slow,
            period,
            slot: 1,
            fast_next: 0,
        }
    }

    fn next_fast(&mut self) -> ProcessId {
        loop {
            let pid = ProcessId(self.fast_next);
            self.fast_next = (self.fast_next + 1) % self.n;
            if pid != self.slow {
                return pid;
            }
        }
    }
}

impl Schedule for Stutter {
    fn next_pid(&mut self) -> Option<ProcessId> {
        let slot = self.slot;
        self.slot += 1;
        if slot.is_multiple_of(self.period) {
            Some(self.slow)
        } else {
            Some(self.next_fast())
        }
    }

    fn support(&self) -> Vec<ProcessId> {
        (0..self.n).map(ProcessId).collect()
    }

    fn completion_oblivious(&self) -> bool {
        // Slot parity and rotation are fixed up front.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_appears_once_per_period() {
        let mut s = Stutter::new(4, ProcessId(1), 5);
        let seq: Vec<usize> = (0..50).map(|_| s.next_pid().unwrap().index()).collect();
        let slow_count = seq.iter().filter(|&&p| p == 1).count();
        assert_eq!(slow_count, 10);
        // Slow appears exactly at every 5th slot (1-indexed).
        for (i, &p) in seq.iter().enumerate() {
            assert_eq!(p == 1, (i + 1) % 5 == 0, "slot {i}");
        }
    }

    #[test]
    fn fast_processes_rotate() {
        let mut s = Stutter::new(3, ProcessId(0), 100);
        let seq: Vec<usize> = (0..6).map(|_| s.next_pid().unwrap().index()).collect();
        assert_eq!(seq, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn support_includes_slow() {
        let s = Stutter::new(3, ProcessId(2), 7);
        assert_eq!(s.support().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_process_panics() {
        Stutter::new(1, ProcessId(0), 2);
    }
}

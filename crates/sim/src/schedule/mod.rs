//! Oblivious adversary schedules.
//!
//! An oblivious adversary fixes a sequence of process ids *before* the
//! execution starts; the coins flipped by processes are independent of
//! this sequence (§1.1). Each implementation of [`Schedule`] is such a
//! strategy. Schedule randomness (for the randomized strategies) comes
//! from its own seed stream, never from process coins, so obliviousness
//! holds by construction.
//!
//! Two pragmatic extensions, documented per type:
//!
//! * [`Schedule::on_done`] lets the engine inform the schedule that a
//!   process finished. Strategies use this only to *skip wasted slots*
//!   (e.g. [`BlockSequential`] moves to the next block). This is
//!   equivalent to an oblivious schedule with sufficiently long fixed
//!   blocks, because slots given to finished processes are free no-ops.
//! * [`Schedule::support`] names the processes the strategy will schedule
//!   until they finish; the engine stops once all of them are done, which
//!   is how wait-freedom under crashes is exercised
//!   ([`CrashSubset`]).

mod block;
mod crash;
mod custom;
mod random;
mod round_robin;
mod stutter;

pub use block::BlockSequential;
pub use crash::CrashSubset;
pub use custom::{FixedSchedule, RepeatingSchedule};
pub use random::{BlockRotation, RandomInterleave};
pub use round_robin::RoundRobin;
pub use stutter::Stutter;

use crate::ids::ProcessId;

/// An adversary strategy: a (possibly infinite) sequence of process ids.
pub trait Schedule {
    /// The next process to take a step, or `None` if the schedule is
    /// exhausted.
    fn next_pid(&mut self) -> Option<ProcessId>;

    /// Processes this schedule keeps scheduling until they finish.
    ///
    /// The engine terminates the run once every supported process is
    /// done. An empty support means the schedule is finite and the run
    /// ends when it is exhausted.
    fn support(&self) -> Vec<ProcessId> {
        Vec::new()
    }

    /// Notification that `pid` has finished its protocol.
    ///
    /// Used only to skip slots that would be free no-ops anyway; see the
    /// module documentation for why this preserves obliviousness.
    fn on_done(&mut self, _pid: ProcessId) {}

    /// Appends up to `max` upcoming slots to `buf`; returns `true` if
    /// the schedule is exhausted (it produced fewer than `max`).
    ///
    /// This is the batch form of [`next_pid`](Self::next_pid) used by
    /// the engine's bucketed event queue: pulling a bucket through a
    /// `Box<dyn Schedule>` costs one virtual call here, and the default
    /// body then resolves `next_pid` statically on the concrete type.
    /// Overrides must produce exactly the sequence repeated `next_pid`
    /// calls would.
    fn fill(&mut self, buf: &mut Vec<ProcessId>, max: usize) -> bool {
        for _ in 0..max {
            match self.next_pid() {
                Some(pid) => buf.push(pid),
                None => return true,
            }
        }
        false
    }

    /// `true` if the slots this schedule will produce are unaffected by
    /// [`on_done`](Self::on_done) notifications (and by anything else
    /// the engine does between pulls).
    ///
    /// The engine prefetches slots in buckets only for
    /// completion-oblivious schedules; for the rest it pulls one slot
    /// at a time, so completion feedback keeps its exact legacy timing.
    /// The conservative default is `false`.
    fn completion_oblivious(&self) -> bool {
        false
    }
}

impl<S: Schedule + ?Sized> Schedule for Box<S> {
    fn next_pid(&mut self) -> Option<ProcessId> {
        (**self).next_pid()
    }

    fn support(&self) -> Vec<ProcessId> {
        (**self).support()
    }

    fn on_done(&mut self, pid: ProcessId) {
        (**self).on_done(pid)
    }

    fn fill(&mut self, buf: &mut Vec<ProcessId>, max: usize) -> bool {
        (**self).fill(buf, max)
    }

    fn completion_oblivious(&self) -> bool {
        (**self).completion_oblivious()
    }
}

/// The schedule families shipped with the simulator, for sweeps over
/// adversary strategies (experiment E12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// Cyclic `0, 1, …, n-1, 0, …` ([`RoundRobin`]).
    RoundRobin,
    /// Uniformly random pid each slot ([`RandomInterleave`]).
    RandomInterleave,
    /// Random block order, each process solo to completion
    /// ([`BlockSequential`]).
    BlockSequential,
    /// Random permutation blocks of fixed length ([`BlockRotation`]).
    BlockRotation,
    /// One designated slow process ([`Stutter`]).
    Stutter,
}

impl ScheduleKind {
    /// All shipped families.
    pub fn all() -> [ScheduleKind; 5] {
        [
            ScheduleKind::RoundRobin,
            ScheduleKind::RandomInterleave,
            ScheduleKind::BlockSequential,
            ScheduleKind::BlockRotation,
            ScheduleKind::Stutter,
        ]
    }

    /// Instantiates this family for `n` processes with schedule seed
    /// `seed`.
    pub fn build(self, n: usize, seed: u64) -> Box<dyn Schedule> {
        match self {
            ScheduleKind::RoundRobin => Box::new(RoundRobin::new(n)),
            ScheduleKind::RandomInterleave => Box::new(RandomInterleave::new(n, seed)),
            ScheduleKind::BlockSequential => Box::new(BlockSequential::shuffled(n, seed)),
            ScheduleKind::BlockRotation => Box::new(BlockRotation::new(n, (n / 2).max(1), seed)),
            ScheduleKind::Stutter if n >= 2 => Box::new(Stutter::new(n, ProcessId(0), n as u64)),
            // A single process cannot be starved relative to others.
            ScheduleKind::Stutter => Box::new(RoundRobin::new(n)),
        }
    }

    /// A short stable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleKind::RoundRobin => "round-robin",
            ScheduleKind::RandomInterleave => "random",
            ScheduleKind::BlockSequential => "block-sequential",
            ScheduleKind::BlockRotation => "block-rotation",
            ScheduleKind::Stutter => "stutter",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_builds_working_schedules() {
        for kind in ScheduleKind::all() {
            let mut s = kind.build(4, 9);
            for _ in 0..16 {
                let pid = s.next_pid().expect("infinite schedule");
                assert!(pid.index() < 4, "{} produced {pid}", kind.name());
            }
            assert!(!s.support().is_empty(), "{}", kind.name());
        }
    }

    #[test]
    fn names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<&str> = ScheduleKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn boxed_schedule_delegates() {
        let mut s: Box<dyn Schedule> = Box::new(RoundRobin::new(2));
        assert_eq!(s.next_pid(), Some(ProcessId(0)));
        assert_eq!(s.support().len(), 2);
        assert!(s.completion_oblivious());
        s.on_done(ProcessId(0));
    }

    #[test]
    fn fill_matches_repeated_next_pid_for_every_kind() {
        for kind in ScheduleKind::all() {
            let mut pulled = kind.build(5, 17);
            let mut batched = kind.build(5, 17);
            let mut expect = Vec::new();
            for _ in 0..300 {
                expect.push(pulled.next_pid().unwrap());
            }
            let mut buf = Vec::new();
            // Pull in uneven chunks to exercise refill boundaries.
            for chunk in [1usize, 7, 64, 100, 128] {
                let exhausted = batched.fill(&mut buf, chunk);
                assert!(!exhausted, "{} exhausted early", kind.name());
            }
            assert_eq!(buf, expect, "{}", kind.name());
        }
    }

    #[test]
    fn fill_reports_exhaustion() {
        let mut s = FixedSchedule::from_indices([0usize, 1]);
        let mut buf = Vec::new();
        assert!(s.fill(&mut buf, 8), "finite schedule must exhaust");
        assert_eq!(buf, vec![ProcessId(0), ProcessId(1)]);
    }

    #[test]
    fn completion_sensitivity_is_declared_correctly() {
        // BlockSequential's future slots depend on on_done; everything
        // else shipped with the simulator is oblivious to it.
        assert!(!BlockSequential::in_order(4).completion_oblivious());
        assert!(RoundRobin::new(4).completion_oblivious());
        assert!(RandomInterleave::new(4, 1).completion_oblivious());
        assert!(BlockRotation::new(4, 2, 1).completion_oblivious());
        assert!(Stutter::new(4, ProcessId(0), 4).completion_oblivious());
        assert!(FixedSchedule::from_indices([0usize]).completion_oblivious());
        // A crash wrapper is exactly as oblivious as what it wraps.
        assert!(CrashSubset::new(RoundRobin::new(4), std::iter::empty()).completion_oblivious());
        assert!(
            !CrashSubset::new(BlockSequential::in_order(4), std::iter::empty())
                .completion_oblivious()
        );
    }
}

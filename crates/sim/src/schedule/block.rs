//! The block-sequential ("solo") schedule.

use super::Schedule;
use crate::ids::ProcessId;
use crate::rng::Xoshiro256StarStar;

/// Runs each process solo to completion, in a fixed order.
///
/// This is the adversary that maximizes individual step complexity for
/// protocols like Chor–Israeli–Li, where a process running alone must
/// keep retrying (expected `Θ(n)` solo steps), while the paper's
/// conciliators stay at their worst-case bounds.
///
/// Completion feedback ([`Schedule::on_done`]) is used only to advance to
/// the next block; this is equivalent to an oblivious schedule whose
/// blocks are long enough for any execution, since slots given to a
/// finished process are free no-ops (§1.1).
///
/// # Examples
///
/// ```
/// use sift_sim::schedule::{BlockSequential, Schedule};
/// use sift_sim::ProcessId;
/// let mut s = BlockSequential::new(vec![ProcessId(1), ProcessId(0)]);
/// assert_eq!(s.next_pid(), Some(ProcessId(1)));
/// assert_eq!(s.next_pid(), Some(ProcessId(1)));
/// s.on_done(ProcessId(1));
/// assert_eq!(s.next_pid(), Some(ProcessId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct BlockSequential {
    order: Vec<ProcessId>,
    current: usize,
}

impl BlockSequential {
    /// Creates a block-sequential schedule over `order`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is empty.
    pub fn new(order: Vec<ProcessId>) -> Self {
        assert!(
            !order.is_empty(),
            "block schedule needs at least one process"
        );
        Self { order, current: 0 }
    }

    /// Identity order `0, 1, …, n-1`.
    pub fn in_order(n: usize) -> Self {
        Self::new((0..n).map(ProcessId).collect())
    }

    /// A uniformly shuffled order, drawn from the schedule's own seed.
    pub fn shuffled(n: usize, seed: u64) -> Self {
        let mut order: Vec<ProcessId> = (0..n).map(ProcessId).collect();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for i in (1..order.len()).rev() {
            let j = rng.range_u64((i + 1) as u64) as usize;
            order.swap(i, j);
        }
        Self::new(order)
    }
}

impl Schedule for BlockSequential {
    fn next_pid(&mut self) -> Option<ProcessId> {
        self.order.get(self.current).copied()
    }

    fn support(&self) -> Vec<ProcessId> {
        self.order.clone()
    }

    fn on_done(&mut self, pid: ProcessId) {
        if self.order.get(self.current) == Some(&pid) {
            self.current += 1;
            // Skip processes that already finished passively (e.g. done
            // before their block started).
            // Their slots would be free no-ops; skipping is equivalent.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_on_current_until_done() {
        let mut s = BlockSequential::in_order(3);
        for _ in 0..5 {
            assert_eq!(s.next_pid(), Some(ProcessId(0)));
        }
        s.on_done(ProcessId(0));
        assert_eq!(s.next_pid(), Some(ProcessId(1)));
    }

    #[test]
    fn ignores_done_of_other_processes() {
        let mut s = BlockSequential::in_order(3);
        s.on_done(ProcessId(2));
        assert_eq!(s.next_pid(), Some(ProcessId(0)));
    }

    #[test]
    fn exhausts_after_all_done() {
        let mut s = BlockSequential::in_order(2);
        s.on_done(ProcessId(0));
        s.on_done(ProcessId(1));
        assert_eq!(s.next_pid(), None);
    }

    #[test]
    fn shuffled_is_a_permutation() {
        let s = BlockSequential::shuffled(10, 5);
        let mut ids: Vec<usize> = s.support().iter().map(|p| p.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffled_differs_across_seeds() {
        let a = BlockSequential::shuffled(16, 1).support();
        let b = BlockSequential::shuffled(16, 2).support();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_order_panics() {
        BlockSequential::new(Vec::new());
    }
}

//! Crash-failure schedules for wait-freedom tests.

use std::collections::BTreeSet;

use super::Schedule;
use crate::ids::ProcessId;
use crate::rng::Xoshiro256StarStar;

/// Wraps a schedule and silently drops a fixed set of crashed processes.
///
/// In the asynchronous model a crash is indistinguishable from never
/// being scheduled again; wait-free protocols must let the surviving
/// processes finish regardless. The crash set is chosen before the run
/// (obliviously).
///
/// # Examples
///
/// ```
/// use sift_sim::schedule::{CrashSubset, RoundRobin, Schedule};
/// use sift_sim::ProcessId;
/// let mut s = CrashSubset::new(RoundRobin::new(3), vec![ProcessId(1)]);
/// assert_eq!(s.next_pid(), Some(ProcessId(0)));
/// assert_eq!(s.next_pid(), Some(ProcessId(2))); // p1 skipped
/// assert_eq!(s.support().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CrashSubset<S> {
    inner: S,
    crashed: BTreeSet<ProcessId>,
}

impl<S: Schedule> CrashSubset<S> {
    /// Crashes the given processes of `inner`.
    pub fn new(inner: S, crashed: impl IntoIterator<Item = ProcessId>) -> Self {
        Self {
            inner,
            crashed: crashed.into_iter().collect(),
        }
    }

    /// Crashes a uniformly random subset of size `⌊n·fraction⌋`, leaving
    /// at least one process alive.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `fraction` is not in `[0, 1]`.
    pub fn random(inner: S, n: usize, fraction: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "crash fraction must be in [0, 1]"
        );
        let mut ids: Vec<usize> = (0..n).collect();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for i in (1..ids.len()).rev() {
            let j = rng.range_u64((i + 1) as u64) as usize;
            ids.swap(i, j);
        }
        let count = ((n as f64 * fraction) as usize).min(n - 1);
        Self::new(inner, ids.into_iter().take(count).map(ProcessId))
    }

    /// The crashed processes.
    pub fn crashed(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.crashed.iter().copied()
    }
}

impl<S: Schedule> Schedule for CrashSubset<S> {
    fn next_pid(&mut self) -> Option<ProcessId> {
        // A crashed process's slots vanish; bounded retry in case the
        // inner schedule is finite or heavily weighted toward crashed
        // processes.
        for _ in 0..1_000_000 {
            match self.inner.next_pid() {
                None => return None,
                Some(pid) if self.crashed.contains(&pid) => continue,
                Some(pid) => return Some(pid),
            }
        }
        None
    }

    fn support(&self) -> Vec<ProcessId> {
        self.inner
            .support()
            .into_iter()
            .filter(|pid| !self.crashed.contains(pid))
            .collect()
    }

    fn on_done(&mut self, pid: ProcessId) {
        self.inner.on_done(pid);
    }

    fn completion_oblivious(&self) -> bool {
        // The crash set is fixed up front; sensitivity is the inner
        // schedule's.
        self.inner.completion_oblivious()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{RandomInterleave, RoundRobin};

    #[test]
    fn crashed_never_scheduled() {
        let mut s = CrashSubset::new(
            RandomInterleave::new(8, 3),
            vec![ProcessId(2), ProcessId(5)],
        );
        for _ in 0..500 {
            let pid = s.next_pid().unwrap();
            assert_ne!(pid.index(), 2);
            assert_ne!(pid.index(), 5);
        }
    }

    #[test]
    fn random_crash_leaves_a_survivor() {
        let s = CrashSubset::random(RoundRobin::new(4), 4, 1.0, 7);
        assert!(!s.support().is_empty());
        assert_eq!(s.crashed().count(), 3);
    }

    #[test]
    fn random_crash_fraction_counts() {
        let s = CrashSubset::random(RoundRobin::new(10), 10, 0.3, 1);
        assert_eq!(s.crashed().count(), 3);
        assert_eq!(s.support().len(), 7);
    }

    #[test]
    fn zero_fraction_crashes_nobody() {
        let s = CrashSubset::random(RoundRobin::new(5), 5, 0.0, 1);
        assert_eq!(s.crashed().count(), 0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_fraction_panics() {
        CrashSubset::random(RoundRobin::new(2), 2, 1.5, 0);
    }
}

//! Run observability: a bounded ring sink for step events and a
//! Chrome-trace (Perfetto) JSON exporter.
//!
//! The engine's full [`Trace`](crate::trace::Trace) keeps every charged
//! operation, which is the right tool for linearizability checks but
//! grows linearly with the run. For observability — "what were the
//! processes doing near the end?", "export this run for a trace
//! viewer" — a bounded [`RingSink`] keeps the last `capacity` events
//! and counts what it dropped, so enabling it on a million-slot run
//! costs a fixed allocation.
//!
//! [`perfetto_trace_json`] renders step events in the Chrome trace
//! event format (the JSON flavour Perfetto and `chrome://tracing`
//! load): one `ph:"X"` complete event per operation on the issuing
//! process's track, `ph:"M"` metadata naming the tracks, and an
//! optional `ph:"C"` counter track for per-round persona survival.
//! Slots map to microsecond timestamps — the unit-cost measure of the
//! paper, not wall-clock time.

use crate::op::OpKind;
use crate::trace::TraceEvent;

/// Stable lower-case name for an [`OpKind`] (used for trace-event
/// names and histogram keys).
pub fn op_kind_name(kind: OpKind) -> &'static str {
    match kind {
        OpKind::RegisterRead => "register_read",
        OpKind::RegisterWrite => "register_write",
        OpKind::SnapshotUpdate => "snapshot_update",
        OpKind::SnapshotScan => "snapshot_scan",
        OpKind::MaxRead => "max_read",
        OpKind::MaxWrite => "max_write",
    }
}

/// A bounded sink of the most recent step events.
///
/// Pushes beyond the capacity overwrite the oldest event;
/// [`dropped`](RingSink::dropped) reports how many were lost. The
/// engine records into one when
/// [`enable_trace_ring`](crate::engine::Engine::enable_trace_ring) is
/// on.
///
/// # Examples
///
/// ```
/// use sift_sim::obs::RingSink;
/// use sift_sim::trace::TraceEvent;
/// use sift_sim::{OpKind, ProcessId};
///
/// let mut ring = RingSink::new(2);
/// for slot in 0..5 {
///     ring.push(TraceEvent { slot, pid: ProcessId(0), kind: OpKind::RegisterRead });
/// }
/// assert_eq!(ring.dropped(), 3);
/// let kept: Vec<u64> = ring.events().map(|e| e.slot).collect();
/// assert_eq!(kept, vec![3, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    pushed: u64,
}

impl RingSink {
    /// Creates a sink keeping the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Records one event, evicting the oldest if full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events pushed over the sink's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Events evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, start) = self.buf.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }
}

/// One point of a per-round persona-survival counter track: `(round,
/// surviving personae)`. Protocol harnesses know rounds; the engine
/// does not, so survival is supplied alongside the events.
pub type SurvivalPoint = (u64, u64);

/// Renders step events as a Chrome trace event file (the JSON format
/// Perfetto and `chrome://tracing` open directly).
///
/// Each event becomes a `ph:"X"` complete event of duration one slot
/// on the track of its process (`tid` = process id); `process_count`
/// tracks are named up front with `ph:"M"` metadata records; each
/// entry of `survival` becomes a `ph:"C"` counter sample at the start
/// of its round. The output is deterministic: byte-identical for equal
/// inputs, with a trailing newline.
///
/// # Examples
///
/// ```
/// use sift_sim::obs::perfetto_trace_json;
/// use sift_sim::trace::TraceEvent;
/// use sift_sim::{OpKind, ProcessId};
///
/// let events = [TraceEvent { slot: 0, pid: ProcessId(0), kind: OpKind::MaxWrite }];
/// let json = perfetto_trace_json(events.iter(), 1, &[(0, 4)]);
/// assert!(json.contains("\"traceEvents\""));
/// assert!(json.contains("max_write"));
/// ```
pub fn perfetto_trace_json<'a>(
    events: impl IntoIterator<Item = &'a TraceEvent>,
    process_count: usize,
    survival: &[SurvivalPoint],
) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |out: &mut String, record: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(&record);
    };

    emit(
        &mut out,
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"sift-sim\"}}"
            .to_string(),
    );
    for pid in 0..process_count {
        emit(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{pid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"p{pid}\"}}}}"
            ),
        );
    }
    for event in events {
        emit(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":1,\
                 \"cat\":\"op\",\"name\":\"{name}\"}}",
                tid = event.pid.index(),
                ts = event.slot,
                name = op_kind_name(event.kind),
            ),
        );
    }
    for &(round, survivors) in survival {
        emit(
            &mut out,
            format!(
                "{{\"ph\":\"C\",\"pid\":0,\"ts\":{round},\"name\":\"survivors\",\
                 \"args\":{{\"count\":{survivors}}}}}"
            ),
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Convenience: exports a [`RingSink`]'s retained events (oldest
/// first). `process_count` should cover every pid that appears; use
/// the run's process count.
pub fn perfetto_from_ring(
    ring: &RingSink,
    process_count: usize,
    survival: &[SurvivalPoint],
) -> String {
    perfetto_trace_json(ring.events(), process_count, survival)
}

/// Checks the structural invariants of a Chrome trace file produced by
/// [`perfetto_trace_json`]: one top-level `traceEvents` array whose
/// records each carry a `ph` and a `pid`, with balanced braces and no
/// trailing comma. Returns the number of records, or an error
/// describing the first violation. (A schema check, not a JSON parser:
/// the renderer controls the grammar, so line-shape validation is
/// exact.)
pub fn check_trace_shape(json: &str) -> Result<usize, String> {
    let body = json
        .strip_prefix("{\"traceEvents\":[\n")
        .ok_or("missing traceEvents header")?
        .strip_suffix("\n]}\n")
        .ok_or("missing closing ]} with trailing newline")?;
    if body.is_empty() {
        return Ok(0);
    }
    let mut count = 0;
    for line in body.split(",\n") {
        let record = line
            .strip_prefix("  ")
            .ok_or_else(|| format!("record not indented: {line:?}"))?;
        if !record.starts_with('{') || !record.ends_with('}') {
            return Err(format!("record is not an object: {record:?}"));
        }
        if record.matches('{').count() != record.matches('}').count() {
            return Err(format!("unbalanced braces: {record:?}"));
        }
        for key in ["\"ph\":", "\"pid\":"] {
            if !record.contains(key) {
                return Err(format!("record missing {key} {record:?}"));
            }
        }
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;

    fn ev(slot: u64, pid: usize, kind: OpKind) -> TraceEvent {
        TraceEvent {
            slot,
            pid: ProcessId(pid),
            kind,
        }
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let mut ring = RingSink::new(3);
        assert!(ring.is_empty());
        for slot in 0..7 {
            ring.push(ev(slot, slot as usize % 2, OpKind::RegisterRead));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_pushed(), 7);
        assert_eq!(ring.dropped(), 4);
        let slots: Vec<u64> = ring.events().map(|e| e.slot).collect();
        assert_eq!(slots, vec![4, 5, 6]);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut ring = RingSink::new(10);
        ring.push(ev(0, 0, OpKind::MaxRead));
        ring.push(ev(1, 1, OpKind::MaxWrite));
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.events().count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_ring_is_rejected() {
        let _ = RingSink::new(0);
    }

    #[test]
    fn exporter_emits_one_record_per_event_plus_metadata() {
        let events = [
            ev(0, 0, OpKind::RegisterWrite),
            ev(1, 1, OpKind::SnapshotScan),
        ];
        let json = perfetto_trace_json(events.iter(), 2, &[(0, 2), (1, 1)]);
        // 1 process_name + 2 thread_name + 2 ops + 2 counter samples.
        assert_eq!(check_trace_shape(&json), Ok(7));
        assert!(json.contains("\"name\":\"register_write\""));
        assert!(json.contains("\"name\":\"snapshot_scan\""));
        assert!(json.contains("\"name\":\"survivors\""));
        assert!(json.contains("\"count\":2"));
    }

    #[test]
    fn exporter_is_deterministic() {
        let events = [ev(3, 1, OpKind::MaxWrite)];
        let a = perfetto_trace_json(events.iter(), 2, &[]);
        let b = perfetto_trace_json(events.iter(), 2, &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn shape_check_rejects_malformed_traces() {
        assert!(check_trace_shape("[]").is_err());
        assert!(check_trace_shape("{\"traceEvents\":[\n]}\n").is_err());
        let missing_pid = "{\"traceEvents\":[\n  {\"ph\":\"X\"}\n]}\n";
        assert!(check_trace_shape(missing_pid).unwrap_err().contains("pid"));
        let empty = perfetto_trace_json([].iter(), 0, &[]);
        // Even an empty export carries the process_name metadata record.
        assert_eq!(check_trace_shape(&empty), Ok(1));
    }

    #[test]
    fn ring_round_trips_through_exporter() {
        let mut ring = RingSink::new(2);
        for slot in 0..4 {
            ring.push(ev(slot, 0, OpKind::MaxRead));
        }
        let json = perfetto_from_ring(&ring, 1, &[]);
        // Only the two retained events appear.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"ts\":2") && json.contains("\"ts\":3"));
        assert!(!json.contains("\"ts\":0,"));
    }

    #[test]
    fn every_op_kind_has_a_distinct_name() {
        use std::collections::HashSet;
        let kinds = [
            OpKind::RegisterRead,
            OpKind::RegisterWrite,
            OpKind::SnapshotUpdate,
            OpKind::SnapshotScan,
            OpKind::MaxRead,
            OpKind::MaxWrite,
        ];
        let names: HashSet<&str> = kinds.iter().map(|&k| op_kind_name(k)).collect();
        assert_eq!(names.len(), kinds.len());
    }
}

//! Concurrent operation histories: invocation/response intervals with
//! recorded results, the input of the linearizability checker.
//!
//! A [`History`] is runtime-agnostic — the simulator produces trivially
//! sequential ones (each operation's interval is a point), while the
//! threaded substrate (`sift-shmem`) records genuinely overlapping
//! intervals by drawing invocation and response timestamps from a
//! global atomic counter around each operation. Operation `A`
//! *really precedes* `B` iff `A.responded < B.invoked`; overlapping
//! intervals are concurrent and the checker may order them either way.

use crate::ids::ProcessId;
use crate::mc::dependence::ObjectKey;
use crate::op::{Op, OpResult};
use crate::value::Value;

/// One completed operation in a concurrent history.
#[derive(Debug, Clone)]
pub struct HistoryEntry<V> {
    /// The invoking process.
    pub pid: ProcessId,
    /// The operation performed.
    pub op: Op<V>,
    /// The result the runtime returned for it.
    pub result: OpResult<V>,
    /// Timestamp drawn immediately before the operation started.
    pub invoked: u64,
    /// Timestamp drawn immediately after the operation returned.
    pub responded: u64,
}

impl<V> HistoryEntry<V> {
    /// The shared object this entry operated on.
    pub fn object(&self) -> ObjectKey {
        self.op.access().object()
    }
}

/// A complete concurrent history (every invocation has its response).
///
/// Pending operations of crashed threads are simply absent: for
/// linearizability of complete histories this is equivalent to checking
/// the completed prefix, which is what all our harnesses need.
#[derive(Debug, Clone, Default)]
pub struct History<V> {
    entries: Vec<HistoryEntry<V>>,
}

impl<V: Value> History<V> {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Builds a history from explicit entries (tests, adapters).
    pub fn from_entries(entries: Vec<HistoryEntry<V>>) -> Self {
        Self { entries }
    }

    /// Appends one completed operation.
    pub fn push(&mut self, entry: HistoryEntry<V>) {
        self.entries.push(entry);
    }

    /// All entries, in recording order.
    pub fn entries(&self) -> &[HistoryEntry<V>] {
        &self.entries
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The distinct objects touched by the history, sorted.
    pub fn objects(&self) -> Vec<ObjectKey> {
        let mut keys: Vec<ObjectKey> = self.entries.iter().map(HistoryEntry::object).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Validates interval sanity: every response strictly follows its
    /// invocation, and per-process intervals do not overlap (a process
    /// performs one operation at a time).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn check_well_formed(&self) -> Result<(), String> {
        for (i, e) in self.entries.iter().enumerate() {
            if e.invoked >= e.responded {
                return Err(format!(
                    "entry {i} ({} by {}): invocation {} not before response {}",
                    e.op.kind() as usize,
                    e.pid,
                    e.invoked,
                    e.responded
                ));
            }
        }
        for pid in self.entries.iter().map(|e| e.pid) {
            let mut intervals: Vec<(u64, u64)> = self
                .entries
                .iter()
                .filter(|e| e.pid == pid)
                .map(|e| (e.invoked, e.responded))
                .collect();
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                if w[0].1 > w[1].0 {
                    return Err(format!(
                        "process {pid} has overlapping operation intervals {:?} and {:?}",
                        w[0], w[1]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RegisterId;

    fn entry(pid: usize, reg: usize, inv: u64, res: u64) -> HistoryEntry<u64> {
        HistoryEntry {
            pid: ProcessId(pid),
            op: Op::RegisterRead(RegisterId(reg)),
            result: OpResult::RegisterValue(None),
            invoked: inv,
            responded: res,
        }
    }

    #[test]
    fn collects_objects() {
        let h = History::from_entries(vec![entry(0, 1, 0, 1), entry(1, 0, 2, 3)]);
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        assert_eq!(
            h.objects(),
            vec![
                ObjectKey::Register(RegisterId(0)),
                ObjectKey::Register(RegisterId(1)),
            ]
        );
        h.check_well_formed().unwrap();
    }

    #[test]
    fn rejects_inverted_interval() {
        let h = History::from_entries(vec![entry(0, 0, 5, 5)]);
        assert!(h.check_well_formed().is_err());
    }

    #[test]
    fn rejects_overlapping_same_process_intervals() {
        let h = History::from_entries(vec![entry(0, 0, 0, 4), entry(0, 0, 2, 6)]);
        assert!(h.check_well_formed().unwrap_err().contains("overlapping"));
    }
}

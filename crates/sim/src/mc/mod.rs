//! Stateless model checking of protocol safety properties.
//!
//! The paper's safety claims — adopt-commit coherence, conciliator
//! validity — are universally quantified over *all* schedules, so
//! sampling random schedules can only ever falsify them. This module
//! checks them exhaustively on bounded instances:
//!
//! * [`dependence`] defines the commutativity structure of the
//!   shared-memory operation set ([`Access`], [`McEvent`]) and canonical
//!   Mazurkiewicz-trace signatures ([`trace_signature`]).
//! * [`naive`] enumerates raw interleavings ([`explore_naive`]) — the
//!   multinomial-cost baseline, kept as a correctness oracle.
//! * [`dpor`] is the sleep-set dynamic partial-order-reduced explorer
//!   ([`explore_dpor`]): one interleaving per trace, with optional
//!   crash-fault injection ([`McOptions::max_crashes`]).
//! * [`counterexample`] shrinks violating schedules into minimal
//!   replayable [`FixedSchedule`](crate::schedule::FixedSchedule)
//!   scripts ([`check_dpor`], [`shrink_schedule`]).
//! * [`history`] and [`linearize`] record concurrent operation
//!   histories and check them against the sequential object
//!   specifications with a Wing–Gong search ([`check_linearizable`]) —
//!   usable both on simulated executions and on histories captured from
//!   a real threaded runtime.

pub mod counterexample;
pub mod dependence;
pub mod dpor;
pub mod history;
pub mod linearize;
pub mod naive;

pub use counterexample::{
    check_dpor, replay_report, replay_script, script_of_events, shrink_schedule,
    shrink_schedule_with, CheckError, Violation,
};
pub use dependence::{trace_signature, Access, McEvent, ObjectKey};
pub use dpor::{explore_dpor, McError, McOptions, McStats, RawViolation};
pub use history::{History, HistoryEntry};
pub use linearize::{check_linearizable, check_regular, NotLinearizable, NotRegular};
pub use naive::explore_naive;

/// Error returned when the execution tree exceeds the configured limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManyExecutions {
    /// The limit that was exceeded.
    pub limit: u64,
}

impl std::fmt::Display for TooManyExecutions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "more than {} executions; shrink the instance",
            self.limit
        )
    }
}

impl std::error::Error for TooManyExecutions {}

/// One maximal execution, as handed to explorer visitors.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionView<'a, O> {
    /// Final per-process outputs; `None` for crashed processes.
    pub outputs: &'a [Option<O>],
    /// The event sequence (steps and crashes) that produced them.
    pub events: &'a [McEvent],
}

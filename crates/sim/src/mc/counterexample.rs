//! Counterexample reporting: schedule shrinking and replayable traces.
//!
//! A model-checking violation arrives as the full event path of one
//! maximal execution — typically longer than necessary and cluttered
//! with steps of innocent processes. This module turns it into a
//! minimal, *replayable* artifact: a plain process-id script for
//! [`FixedSchedule`](crate::schedule::FixedSchedule). Crashes need no
//! explicit representation — in a finite schedule, a crashed process is
//! simply one that never appears again, so every shrunk counterexample
//! replays through the ordinary deterministic [`Engine`].
//!
//! Shrinking is greedy delta-debugging at step granularity: try
//! deleting each slot in turn, keep the deletion whenever the property
//! still fails on the deterministic replay, and repeat until a full
//! pass deletes nothing. The result is *1-minimal* (no single slot can
//! be removed), not globally minimal — good enough to cut a violating
//! execution down to the conflicting core.

use std::error::Error;
use std::fmt;

use crate::engine::{Engine, RunReport};
use crate::layout::Layout;
use crate::mc::dependence::McEvent;
use crate::mc::dpor::{explore_dpor, McError, McOptions, McStats};
use crate::mc::TooManyExecutions;
use crate::process::Process;
use crate::schedule::FixedSchedule;

/// Replays a process-id script deterministically and returns the
/// per-process outputs (`None` for processes the script starves, which
/// is how crashes replay).
pub fn replay_script<P: Process>(
    layout: &Layout,
    processes: Vec<P>,
    script: &[usize],
) -> Vec<Option<P::Output>> {
    replay_report(layout, processes, script).outputs
}

/// Replays a process-id script deterministically and returns the full
/// [`RunReport`] — outputs plus final process state machines, metrics,
/// and memory — for properties that judge more than outputs (e.g. the
/// fuzzer's survivor-monotonicity and step-bound checks).
pub fn replay_report<P: Process>(
    layout: &Layout,
    processes: Vec<P>,
    script: &[usize],
) -> RunReport<P> {
    Engine::new(layout, processes).run(FixedSchedule::from_indices(script.iter().copied()))
}

/// Extracts the replay script of an explored execution: the process ids
/// of its [`Step`](McEvent::Step) events, in order. Crash events
/// contribute nothing — the crashed process simply stops appearing.
pub fn script_of_events(events: &[McEvent]) -> Vec<usize> {
    events
        .iter()
        .filter_map(|e| match e {
            McEvent::Step { pid, .. } => Some(pid.index()),
            McEvent::Crash { .. } => None,
        })
        .collect()
}

/// Greedily shrinks a failing schedule script to a 1-minimal one.
///
/// `factory` must build the same initial processes every call;
/// `property` judges the outputs of a replay (`Err` means the violation
/// reproduces). The returned script still fails, along with the message
/// its replay produced.
///
/// # Panics
///
/// Panics if the initial `script` does not reproduce a failure (the
/// caller should only pass scripts extracted from a violating
/// execution).
pub fn shrink_schedule<P, O>(
    layout: &Layout,
    factory: &impl Fn() -> Vec<P>,
    script: Vec<usize>,
    property: &impl Fn(&[Option<O>]) -> Result<(), String>,
) -> (Vec<usize>, String)
where
    P: Process<Output = O>,
{
    shrink_schedule_with(layout, factory, script, &|report: &RunReport<P>| {
        property(&report.outputs)
    })
}

/// Like [`shrink_schedule`], but the property judges the full replay
/// [`RunReport`] — final process state machines, metrics, and stop
/// reason included — which is what the fuzzer's deterministic
/// invariants (survivor monotonicity, exact step bounds) need.
///
/// # Panics
///
/// Panics if the initial `script` does not reproduce a failure.
pub fn shrink_schedule_with<P>(
    layout: &Layout,
    factory: &impl Fn() -> Vec<P>,
    mut script: Vec<usize>,
    property: &impl Fn(&RunReport<P>) -> Result<(), String>,
) -> (Vec<usize>, String)
where
    P: Process,
{
    let mut message = property(&replay_report(layout, factory(), &script))
        .expect_err("shrink_schedule requires a script that reproduces the violation");
    loop {
        let mut deleted_any = false;
        let mut i = 0;
        while i < script.len() {
            let mut candidate = script.clone();
            candidate.remove(i);
            match property(&replay_report(layout, factory(), &candidate)) {
                Err(msg) => {
                    script = candidate;
                    message = msg;
                    deleted_any = true;
                    // Do not advance: position `i` now holds the next slot.
                }
                Ok(()) => i += 1,
            }
        }
        if !deleted_any {
            return (script, message);
        }
    }
}

/// A model-checking violation with a shrunk, replayable schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The property failure message from replaying the shrunk script.
    pub message: String,
    /// The full event path of the originally explored violating
    /// execution (steps and crashes).
    pub events: Vec<McEvent>,
    /// The shrunk process-id schedule; replay it with
    /// [`FixedSchedule::from_indices`].
    pub script: Vec<usize>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "property violated: {}", self.message)?;
        writeln!(
            f,
            "replay with: FixedSchedule::from_indices({:?})",
            self.script
        )?;
        write!(
            f,
            "(original execution: {} events; shrunk to {} slots)",
            self.events.len(),
            self.script.len()
        )
    }
}

impl Error for Violation {}

/// Outcome of a failed [`check_dpor`] run.
#[derive(Debug, Clone)]
pub enum CheckError {
    /// The instance exceeded the execution limit.
    TooManyExecutions(TooManyExecutions),
    /// The property failed; the violation carries a shrunk replayable
    /// schedule.
    Violation(Violation),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::TooManyExecutions(e) => e.fmt(f),
            CheckError::Violation(v) => v.fmt(f),
        }
    }
}

impl Error for CheckError {}

/// Model-checks `property` over every Mazurkiewicz trace (and crash
/// truncation, per `options.max_crashes`) of the processes built by
/// `factory`, shrinking any violation into a replayable schedule.
///
/// The property judges final outputs only (which is what safety
/// properties like adopt-commit coherence need); this is what makes
/// violations replayable through the ordinary [`Engine`] without
/// re-running the explorer.
///
/// # Errors
///
/// [`CheckError::Violation`] with a shrunk script if the property fails
/// anywhere; [`CheckError::TooManyExecutions`] if the instance exceeds
/// `options.limit`.
pub fn check_dpor<P>(
    layout: &Layout,
    factory: impl Fn() -> Vec<P>,
    options: McOptions,
    property: impl Fn(&[Option<P::Output>]) -> Result<(), String>,
) -> Result<McStats, CheckError>
where
    P: Process + Clone,
    P::Output: Clone,
{
    let result = explore_dpor(layout, factory(), options, &mut |view| {
        property(view.outputs)
    });
    match result {
        Ok(stats) => Ok(stats),
        Err(McError::TooManyExecutions(e)) => Err(CheckError::TooManyExecutions(e)),
        Err(McError::Violation(raw)) => {
            let script = script_of_events(&raw.events);
            let (script, message) = shrink_schedule(layout, &factory, script, &property);
            Err(CheckError::Violation(Violation {
                message,
                events: raw.events,
                script,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ProcessId, RegisterId};
    use crate::layout::LayoutBuilder;
    use crate::mc::dependence::Access;
    use crate::op::{Op, OpResult};
    use crate::process::Step;

    /// Writes `id` to `reg` `ops` times, then returns `id`.
    #[derive(Clone)]
    struct Writer {
        reg: RegisterId,
        id: u64,
        ops: u32,
        issued: u32,
    }

    impl Writer {
        fn new(reg: RegisterId, id: u64, ops: u32) -> Self {
            Self {
                reg,
                id,
                ops,
                issued: 0,
            }
        }
    }

    impl Process for Writer {
        type Value = u64;
        type Output = u64;

        fn step(&mut self, _prev: Option<OpResult<u64>>) -> Step<u64, u64> {
            if self.issued < self.ops {
                self.issued += 1;
                Step::Issue(Op::RegisterWrite(self.reg, self.id))
            } else {
                Step::Done(self.id)
            }
        }
    }

    fn one_register() -> (Layout, RegisterId) {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        (b.build(), r)
    }

    #[test]
    fn script_of_events_drops_crashes() {
        let events = [
            McEvent::Step {
                pid: ProcessId(1),
                access: Access::RegisterRead(RegisterId(0)),
            },
            McEvent::Crash { pid: ProcessId(0) },
            McEvent::Step {
                pid: ProcessId(1),
                access: Access::RegisterRead(RegisterId(0)),
            },
        ];
        assert_eq!(script_of_events(&events), vec![1, 1]);
    }

    #[test]
    fn shrink_drops_innocent_steps() {
        let (layout, r) = one_register();
        let factory = || vec![Writer::new(r, 0, 3), Writer::new(r, 1, 1)];
        // "Violation": p1 finished. p0's steps are irrelevant noise.
        let property = |outputs: &[Option<u64>]| {
            if outputs[1].is_some() {
                Err("p1 finished".to_string())
            } else {
                Ok(())
            }
        };
        let script = vec![0, 0, 1, 0];
        let (shrunk, message) = shrink_schedule(&layout, &factory, script, &property);
        assert_eq!(shrunk, vec![1]);
        assert_eq!(message, "p1 finished");
    }

    #[test]
    fn check_dpor_reports_shrunk_replayable_violation() {
        let (layout, r) = one_register();
        let factory = || vec![Writer::new(r, 0, 2), Writer::new(r, 1, 2)];
        let err = check_dpor(&layout, factory, McOptions::new(1000), |outputs| {
            if outputs.iter().all(Option::is_some) {
                Err("everyone finished".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        let CheckError::Violation(v) = err else {
            panic!("expected a violation");
        };
        // Minimal failing schedule: both processes run to completion.
        assert_eq!(v.script.len(), 4);
        assert_eq!(v.message, "everyone finished");
        // The shrunk script replays deterministically to the violation.
        let outputs = replay_script(&layout, factory(), &v.script);
        assert!(outputs.iter().all(Option::is_some));
        assert_eq!(outputs, replay_script(&layout, factory(), &v.script));
        // The report prints a replayable schedule.
        let printed = v.to_string();
        assert!(printed.contains("FixedSchedule::from_indices"));
        assert!(printed.contains("everyone finished"));
    }

    #[test]
    fn check_dpor_passes_clean_properties() {
        let (layout, r) = one_register();
        let factory = || vec![Writer::new(r, 0, 1), Writer::new(r, 1, 1)];
        let stats = check_dpor(&layout, factory, McOptions::new(1000), |_| Ok(())).unwrap();
        assert!(stats.executions > 0);
    }

    #[test]
    #[should_panic(expected = "reproduces the violation")]
    fn shrink_rejects_passing_scripts() {
        let (layout, r) = one_register();
        let factory = || vec![Writer::new(r, 0, 1)];
        let _ = shrink_schedule(&layout, &factory, vec![0], &|_: &[Option<u64>]| Ok(()));
    }
}

//! A Wing–Gong linearizability checker for register, snapshot, and
//! max-register histories.
//!
//! Linearizability is *compositional* (Herlihy–Wing): a history is
//! linearizable iff its per-object subhistories each are, so the checker
//! partitions the history by [`ObjectKey`] and checks objects
//! independently. Per object it runs the Wing–Gong search: repeatedly
//! pick a *minimal* completed operation (one not really-preceded by any
//! other remaining operation), apply it to the sequential specification,
//! and require the recorded result to match; backtrack on mismatch.
//! Failed `(remaining-set, state)` pairs are memoized, which keeps the
//! worst case at `O(2^k)` states for `k` operations on one object
//! instead of `O(k!)` orders.
//!
//! The sequential specifications mirror [`Memory`](crate::memory::Memory)
//! exactly — in particular a max-register write is retained only if its
//! key *strictly* exceeds the current maximum, so ties keep the first
//! value.

use std::error::Error;
use std::fmt;

use crate::layout::Layout;
use crate::mc::dependence::ObjectKey;
use crate::mc::history::{History, HistoryEntry};
use crate::op::{Op, OpResult, ScanView};
use crate::value::Value;

/// Evidence that a history is not linearizable (or could not be
/// checked).
#[derive(Debug, Clone)]
pub struct NotLinearizable {
    /// The object whose subhistory admits no legal linearization.
    pub object: ObjectKey,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for NotLinearizable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "history not linearizable at {:?}: {}",
            self.object, self.message
        )
    }
}

impl Error for NotLinearizable {}

/// The sequential specification state of one shared object.
#[derive(Debug, Clone)]
enum SeqState<V> {
    Register(Option<V>),
    Snapshot(Vec<Option<V>>),
    Max(Option<(u64, V)>),
}

impl<V: Value + PartialEq> SeqState<V> {
    fn initial(layout: &Layout, object: ObjectKey) -> Self {
        match object {
            ObjectKey::Register(_) => SeqState::Register(None),
            ObjectKey::Snapshot(id) => {
                let components = layout
                    .snapshot_components()
                    .get(id.index())
                    .copied()
                    .unwrap_or(0);
                SeqState::Snapshot(vec![None; components])
            }
            ObjectKey::MaxRegister(_) => SeqState::Max(None),
        }
    }

    /// Applies `op` to the sequential state, returning the result the
    /// specification dictates. Mirrors `Memory::execute`.
    fn apply(&mut self, op: &Op<V>) -> OpResult<V> {
        match (op, self) {
            (Op::RegisterRead(_), SeqState::Register(v)) => OpResult::RegisterValue(v.clone()),
            (Op::RegisterWrite(_, value), SeqState::Register(v)) => {
                *v = Some(value.clone());
                OpResult::Ack
            }
            (Op::SnapshotScan(_), SeqState::Snapshot(components)) => {
                OpResult::SnapshotView(ScanView::from_components(components.clone()))
            }
            (Op::SnapshotUpdate(_, component, value), SeqState::Snapshot(components)) => {
                components[*component] = Some(value.clone());
                OpResult::Ack
            }
            (Op::MaxRead(_), SeqState::Max(v)) => OpResult::MaxValue(v.clone()),
            (Op::MaxWrite(_, key, value), SeqState::Max(v)) => {
                match v {
                    Some((current, _)) if *current >= *key => {}
                    _ => *v = Some((*key, value.clone())),
                }
                OpResult::Ack
            }
            (op, state) => unreachable!("op {op:?} applied to mismatched object state {state:?}"),
        }
    }

    fn matches(&self, other: &Self) -> bool {
        match (self, other) {
            (SeqState::Register(a), SeqState::Register(b)) => a == b,
            (SeqState::Snapshot(a), SeqState::Snapshot(b)) => a == b,
            (SeqState::Max(a), SeqState::Max(b)) => a == b,
            _ => false,
        }
    }
}

fn results_match<V: Value + PartialEq>(spec: &OpResult<V>, recorded: &OpResult<V>) -> bool {
    match (spec, recorded) {
        (OpResult::Ack, OpResult::Ack) => true,
        (OpResult::RegisterValue(a), OpResult::RegisterValue(b)) => a == b,
        (OpResult::MaxValue(a), OpResult::MaxValue(b)) => a == b,
        (OpResult::SnapshotView(a), OpResult::SnapshotView(b)) => a[..] == b[..],
        _ => false,
    }
}

/// Checks that `history` is linearizable with respect to the sequential
/// register/snapshot/max-register specifications, given the `layout`
/// that sizes the snapshot objects.
///
/// # Errors
///
/// Returns [`NotLinearizable`] naming the first object whose subhistory
/// admits no legal sequential order consistent with real-time precedence
/// (`A` precedes `B` iff `A.responded < B.invoked`).
///
/// # Panics
///
/// Panics if any single object carries more than 128 operations (the
/// memoization mask is a `u128`); split workloads across objects or
/// shorten runs instead.
pub fn check_linearizable<V: Value + PartialEq>(
    layout: &Layout,
    history: &History<V>,
) -> Result<(), NotLinearizable> {
    for object in history.objects() {
        let entries: Vec<&HistoryEntry<V>> = history
            .entries()
            .iter()
            .filter(|e| e.object() == object)
            .collect();
        assert!(
            entries.len() <= 128,
            "object {object:?} carries {} operations; the checker supports at most 128 per object",
            entries.len()
        );
        check_object(layout, object, &entries)?;
    }
    Ok(())
}

fn check_object<V: Value + PartialEq>(
    layout: &Layout,
    object: ObjectKey,
    entries: &[&HistoryEntry<V>],
) -> Result<(), NotLinearizable> {
    let full: u128 = if entries.len() == 128 {
        u128::MAX
    } else {
        (1u128 << entries.len()) - 1
    };
    let mut failed: Vec<(u128, SeqState<V>)> = Vec::new();
    let state = SeqState::initial(layout, object);
    if search(entries, 0, state, full, &mut failed) {
        Ok(())
    } else {
        Err(NotLinearizable {
            object,
            message: format!(
                "no sequential order of its {} operations matches the recorded \
                 results under real-time precedence",
                entries.len()
            ),
        })
    }
}

/// Evidence that a history is not even *regular* (see [`check_regular`]).
#[derive(Debug, Clone)]
pub struct NotRegular {
    /// The object whose subhistory violates regularity.
    pub object: ObjectKey,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for NotRegular {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "history not regular at {:?}: {}",
            self.object, self.message
        )
    }
}

impl Error for NotRegular {}

/// Checks that `history` satisfies *regular*-register semantics — the
/// weaker consistency level of Lamport's regular registers
/// (Hadzilacos–Hu–Toueg, arXiv 2006.06771): every read must return the
/// value of some write **overlapping** it, or of a latest write
/// **preceding** it (⊥ counts as the initial virtual write). Unlike
/// atomicity, regularity permits new/old inversions between concurrent
/// reads, so torn-publication register histories that fail
/// [`check_linearizable`] can still pass here — this is exactly the
/// boundary the `torn-publication` substrate mode is pinned against.
///
/// Register subhistories are checked with the per-read regularity
/// predicate (no search needed — regularity is a local property of each
/// read). Snapshot and max-register subhistories are held to full
/// linearizability, since no substrate mode weakens them.
///
/// # Errors
///
/// Returns [`NotRegular`] naming the first object with an inexplicable
/// read (for registers) or a non-linearizable subhistory (for the other
/// object kinds).
///
/// # Panics
///
/// As [`check_linearizable`], for the non-register objects.
pub fn check_regular<V: Value + PartialEq>(
    layout: &Layout,
    history: &History<V>,
) -> Result<(), NotRegular> {
    for object in history.objects() {
        let entries: Vec<&HistoryEntry<V>> = history
            .entries()
            .iter()
            .filter(|e| e.object() == object)
            .collect();
        match object {
            ObjectKey::Register(_) => check_register_regular(object, &entries)?,
            _ => {
                assert!(
                    entries.len() <= 128,
                    "object {object:?} carries {} operations; the checker supports \
                     at most 128 per object",
                    entries.len()
                );
                check_object(layout, object, &entries).map_err(|e| NotRegular {
                    object: e.object,
                    message: e.message,
                })?;
            }
        }
    }
    Ok(())
}

/// The per-read regularity predicate over one register's subhistory:
/// `O(reads × writes²)`, no backtracking.
fn check_register_regular<V: Value + PartialEq>(
    object: ObjectKey,
    entries: &[&HistoryEntry<V>],
) -> Result<(), NotRegular> {
    let illegal = |message: String| Err(NotRegular { object, message });
    let writes: Vec<(&HistoryEntry<V>, &V)> = entries
        .iter()
        .filter_map(|e| match &e.op {
            Op::RegisterWrite(_, v) => Some((*e, v)),
            _ => None,
        })
        .collect();
    for read in entries {
        let value = match (&read.op, &read.result) {
            (Op::RegisterWrite(_, _), OpResult::Ack) => continue,
            (Op::RegisterRead(_), OpResult::RegisterValue(v)) => v,
            (op, result) => {
                return illegal(format!("malformed entry: op {op:?} returned {result:?}"))
            }
        };
        // A write `w` may serve this read if it overlaps it, or if it
        // precedes it without another write *definitively* between the
        // two (one that starts after `w` responds and responds before
        // the read invokes — such a write supersedes `w` in every
        // serialization of the writes).
        let may_serve = |w: &HistoryEntry<V>| {
            let overlaps = w.invoked <= read.responded && w.responded >= read.invoked;
            if overlaps {
                return true;
            }
            let precedes = w.responded < read.invoked;
            precedes
                && !writes.iter().any(|(between, _)| {
                    between.invoked > w.responded && between.responded < read.invoked
                })
        };
        match value {
            // ⊥ is the initial virtual write: legal iff no real write
            // completed before the read began (otherwise some written
            // value precedes the read and must be visible).
            None => {
                if let Some((w, _)) = writes.iter().find(|(w, _)| w.responded < read.invoked) {
                    return illegal(format!(
                        "read at [{}, {}] returned ⊥ although a write at [{}, {}] \
                         completed before it",
                        read.invoked, read.responded, w.invoked, w.responded
                    ));
                }
            }
            Some(v) => {
                if !writes.iter().any(|(w, wv)| *wv == v && may_serve(w)) {
                    return illegal(format!(
                        "read at [{}, {}] returned a value no overlapping or \
                         latest-preceding write produced",
                        read.invoked, read.responded
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Wing–Gong search: `done` marks linearized operations, `state` is the
/// spec state after them. Returns `true` iff the remainder linearizes.
fn search<V: Value + PartialEq>(
    entries: &[&HistoryEntry<V>],
    done: u128,
    state: SeqState<V>,
    full: u128,
    failed: &mut Vec<(u128, SeqState<V>)>,
) -> bool {
    if done == full {
        return true;
    }
    if failed
        .iter()
        .any(|(mask, s)| *mask == done && s.matches(&state))
    {
        return false;
    }
    for (i, entry) in entries.iter().enumerate() {
        if done & (1 << i) != 0 {
            continue;
        }
        // `entry` is minimal iff no other remaining operation really
        // precedes it (responded strictly before this one was invoked).
        let minimal = entries
            .iter()
            .enumerate()
            .all(|(j, other)| j == i || done & (1 << j) != 0 || other.responded >= entry.invoked);
        if !minimal {
            continue;
        }
        let mut next = state.clone();
        let spec_result = next.apply(&entry.op);
        if !results_match(&spec_result, &entry.result) {
            continue;
        }
        if search(entries, done | (1 << i), next, full, failed) {
            return true;
        }
    }
    failed.push((done, state));
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ProcessId, RegisterId};
    use crate::layout::LayoutBuilder;

    fn entry(
        pid: usize,
        op: Op<u64>,
        result: OpResult<u64>,
        inv: u64,
        res: u64,
    ) -> HistoryEntry<u64> {
        HistoryEntry {
            pid: ProcessId(pid),
            op,
            result,
            invoked: inv,
            responded: res,
        }
    }

    fn register_layout() -> (Layout, RegisterId) {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        (b.build(), r)
    }

    #[test]
    fn empty_history_linearizes() {
        let (layout, _) = register_layout();
        check_linearizable(&layout, &History::<u64>::new()).unwrap();
    }

    #[test]
    fn sequential_register_history_linearizes() {
        let (layout, r) = register_layout();
        let h = History::from_entries(vec![
            entry(0, Op::RegisterWrite(r, 7), OpResult::Ack, 0, 1),
            entry(
                1,
                Op::RegisterRead(r),
                OpResult::RegisterValue(Some(7)),
                2,
                3,
            ),
        ]);
        check_linearizable(&layout, &h).unwrap();
    }

    #[test]
    fn overlapping_read_may_return_either_value() {
        let (layout, r) = register_layout();
        // Write [0, 10] overlaps both reads; one sees ⊥, one sees 7.
        let h = History::from_entries(vec![
            entry(0, Op::RegisterWrite(r, 7), OpResult::Ack, 0, 10),
            entry(1, Op::RegisterRead(r), OpResult::RegisterValue(None), 1, 2),
            entry(
                1,
                Op::RegisterRead(r),
                OpResult::RegisterValue(Some(7)),
                3,
                4,
            ),
        ]);
        check_linearizable(&layout, &h).unwrap();
    }

    #[test]
    fn stale_read_after_completed_write_is_rejected() {
        let (layout, r) = register_layout();
        // The write completes strictly before the read is invoked, yet
        // the read returns the initial ⊥.
        let h = History::from_entries(vec![
            entry(0, Op::RegisterWrite(r, 7), OpResult::Ack, 0, 1),
            entry(1, Op::RegisterRead(r), OpResult::RegisterValue(None), 2, 3),
        ]);
        let err = check_linearizable(&layout, &h).unwrap_err();
        assert_eq!(err.object, ObjectKey::Register(r));
        assert!(err.to_string().contains("not linearizable"));
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        let (layout, r) = register_layout();
        // Both reads overlap the write, but the first returns the new
        // value and the second (which starts after the first responds)
        // returns the old one — no sequential order explains that.
        let h = History::from_entries(vec![
            entry(0, Op::RegisterWrite(r, 7), OpResult::Ack, 0, 10),
            entry(
                1,
                Op::RegisterRead(r),
                OpResult::RegisterValue(Some(7)),
                1,
                2,
            ),
            entry(2, Op::RegisterRead(r), OpResult::RegisterValue(None), 3, 4),
        ]);
        check_linearizable(&layout, &h).unwrap_err();
    }

    #[test]
    fn new_old_inversion_is_regular() {
        let (layout, r) = register_layout();
        // The exact shape `check_linearizable` rejects above: both
        // reads overlap the write, the earlier one sees the new value,
        // the later one the old. Regularity allows it — each read
        // returns an overlapping write's value or the preceding ⊥.
        let h = History::from_entries(vec![
            entry(0, Op::RegisterWrite(r, 7), OpResult::Ack, 0, 10),
            entry(
                1,
                Op::RegisterRead(r),
                OpResult::RegisterValue(Some(7)),
                1,
                2,
            ),
            entry(2, Op::RegisterRead(r), OpResult::RegisterValue(None), 3, 4),
        ]);
        check_linearizable(&layout, &h).unwrap_err();
        check_regular(&layout, &h).unwrap();
    }

    #[test]
    fn stale_read_after_completed_write_is_not_regular() {
        let (layout, r) = register_layout();
        // ⊥ after a completed write: not even regular.
        let h = History::from_entries(vec![
            entry(0, Op::RegisterWrite(r, 7), OpResult::Ack, 0, 1),
            entry(1, Op::RegisterRead(r), OpResult::RegisterValue(None), 2, 3),
        ]);
        let err = check_regular(&layout, &h).unwrap_err();
        assert_eq!(err.object, ObjectKey::Register(r));
        assert!(err.to_string().contains("not regular"));
    }

    #[test]
    fn superseded_write_may_not_serve_a_regular_read() {
        let (layout, r) = register_layout();
        // Write 1 then write 2, both complete before the read: only the
        // later value is a legal return.
        let h = History::from_entries(vec![
            entry(0, Op::RegisterWrite(r, 1), OpResult::Ack, 0, 1),
            entry(0, Op::RegisterWrite(r, 2), OpResult::Ack, 2, 3),
            entry(
                1,
                Op::RegisterRead(r),
                OpResult::RegisterValue(Some(1)),
                4,
                5,
            ),
        ]);
        check_regular(&layout, &h).unwrap_err();
        // But if the two writes overlap each other, either value can be
        // "the latest preceding write" in some write serialization.
        let h = History::from_entries(vec![
            entry(0, Op::RegisterWrite(r, 1), OpResult::Ack, 0, 3),
            entry(2, Op::RegisterWrite(r, 2), OpResult::Ack, 1, 2),
            entry(
                1,
                Op::RegisterRead(r),
                OpResult::RegisterValue(Some(1)),
                4,
                5,
            ),
        ]);
        check_regular(&layout, &h).unwrap();
    }

    #[test]
    fn regular_read_may_not_invent_values() {
        let (layout, r) = register_layout();
        let h = History::from_entries(vec![
            entry(0, Op::RegisterWrite(r, 7), OpResult::Ack, 0, 10),
            entry(
                1,
                Op::RegisterRead(r),
                OpResult::RegisterValue(Some(99)),
                1,
                2,
            ),
        ]);
        let err = check_regular(&layout, &h).unwrap_err();
        assert!(err.to_string().contains("no overlapping"));
    }

    #[test]
    fn non_register_objects_keep_atomic_semantics_under_check_regular() {
        let mut b = LayoutBuilder::new();
        let m = b.max_register();
        let layout = b.build();
        // A max-register read forgetting a completed higher-key write
        // fails even the regularity check (only plain registers weaken).
        let h = History::from_entries(vec![
            entry(0, Op::MaxWrite(m, 9, 90), OpResult::Ack, 0, 1),
            entry(1, Op::MaxRead(m), OpResult::MaxValue(None), 2, 3),
        ]);
        let err = check_regular(&layout, &h).unwrap_err();
        assert_eq!(err.object, ObjectKey::MaxRegister(m));
    }

    #[test]
    fn max_register_tie_keeps_first_value() {
        let mut b = LayoutBuilder::new();
        let m = b.max_register();
        let layout = b.build();
        // Two completed writes with the same key: the read must see the
        // first writer's value in some legal order — and because either
        // write may linearize first, both values are acceptable...
        let h = History::from_entries(vec![
            entry(0, Op::MaxWrite(m, 5, 50), OpResult::Ack, 0, 10),
            entry(1, Op::MaxWrite(m, 5, 51), OpResult::Ack, 1, 11),
            entry(2, Op::MaxRead(m), OpResult::MaxValue(Some((5, 51))), 12, 13),
        ]);
        check_linearizable(&layout, &h).unwrap();
        // ...but a key lower than a really-preceding write must lose.
        let h = History::from_entries(vec![
            entry(0, Op::MaxWrite(m, 5, 50), OpResult::Ack, 0, 1),
            entry(1, Op::MaxWrite(m, 3, 30), OpResult::Ack, 2, 3),
            entry(2, Op::MaxRead(m), OpResult::MaxValue(Some((3, 30))), 4, 5),
        ]);
        check_linearizable(&layout, &h).unwrap_err();
    }

    #[test]
    fn snapshot_scan_must_reflect_completed_updates() {
        let mut b = LayoutBuilder::new();
        let s = b.snapshot(2);
        let layout = b.build();
        let view = |c: Vec<Option<u64>>| OpResult::SnapshotView(ScanView::from_components(c));
        let h = History::from_entries(vec![
            entry(0, Op::SnapshotUpdate(s, 0, 8), OpResult::Ack, 0, 1),
            entry(1, Op::SnapshotScan(s), view(vec![Some(8), None]), 2, 3),
        ]);
        check_linearizable(&layout, &h).unwrap();
        let h = History::from_entries(vec![
            entry(0, Op::SnapshotUpdate(s, 0, 8), OpResult::Ack, 0, 1),
            entry(1, Op::SnapshotScan(s), view(vec![None, None]), 2, 3),
        ]);
        let err = check_linearizable(&layout, &h).unwrap_err();
        assert_eq!(err.object, ObjectKey::Snapshot(s));
    }

    #[test]
    fn objects_are_checked_compositionally() {
        let mut b = LayoutBuilder::new();
        let r0 = b.register();
        let r1 = b.register();
        let layout = b.build();
        // r0's subhistory is fine; r1's is not.
        let h = History::from_entries(vec![
            entry(0, Op::RegisterWrite(r0, 1), OpResult::Ack, 0, 1),
            entry(
                1,
                Op::RegisterRead(r0),
                OpResult::RegisterValue(Some(1)),
                2,
                3,
            ),
            entry(0, Op::RegisterWrite(r1, 2), OpResult::Ack, 4, 5),
            entry(1, Op::RegisterRead(r1), OpResult::RegisterValue(None), 6, 7),
        ]);
        let err = check_linearizable(&layout, &h).unwrap_err();
        assert_eq!(err.object, ObjectKey::Register(r1));
    }
}

//! The naive interleaving enumerator: the baseline the DPOR explorer is
//! measured against.
//!
//! Walks the full tree of interleavings (which live process takes the
//! next step) and invokes a visitor on every maximal execution. The
//! number of executions of processes taking `s₁, …, s_k` steps is the
//! multinomial `(Σsᵢ)! / Πsᵢ!`, so only toy instances are feasible —
//! two 7-step proposers cost 3432 executions, three 8-step proposers
//! already ~9.5 billion. Use [`explore_dpor`](crate::mc::explore_dpor)
//! for anything non-trivial; this enumerator exists as a correctness
//! oracle (its trace signatures must equal DPOR's) and for exact
//! multinomial counting in tests.

use crate::layout::Layout;
use crate::mc::dependence::McEvent;
use crate::mc::{ExecutionView, TooManyExecutions};
use crate::memory::Memory;
use crate::op::Op;
use crate::process::{Process, Step};
use crate::value::Value;

enum ExpSlot<P: Process> {
    Running { proc: P, pending: Op<P::Value> },
    Done,
}

impl<P: Process + Clone> Clone for ExpSlot<P>
where
    P::Value: Value,
{
    fn clone(&self) -> Self {
        match self {
            ExpSlot::Running { proc, pending } => ExpSlot::Running {
                proc: proc.clone(),
                pending: pending.clone(),
            },
            ExpSlot::Done => ExpSlot::Done,
        }
    }
}

/// Enumerates every interleaving of `processes` over fresh memory for
/// `layout`, calling `visit` with each maximal execution (outputs plus
/// the event sequence that produced them).
///
/// Returns the number of executions visited.
///
/// # Errors
///
/// Returns [`TooManyExecutions`] (after aborting the walk) if more than
/// `limit` executions exist.
pub fn explore_naive<P>(
    layout: &Layout,
    processes: Vec<P>,
    limit: u64,
    visit: &mut impl FnMut(ExecutionView<'_, P::Output>),
) -> Result<u64, TooManyExecutions>
where
    P: Process + Clone,
    P::Output: Clone,
{
    let n = processes.len();
    let mut outputs: Vec<Option<P::Output>> = vec![None; n];
    let slots: Vec<ExpSlot<P>> = processes
        .into_iter()
        .enumerate()
        .map(|(i, mut proc)| match proc.step(None) {
            Step::Issue(op) => ExpSlot::Running { proc, pending: op },
            Step::Done(out) => {
                outputs[i] = Some(out);
                ExpSlot::Done
            }
        })
        .collect();
    let memory = Memory::new(layout);
    let mut count = 0u64;
    let mut path = Vec::new();
    dfs(memory, slots, outputs, limit, &mut count, &mut path, visit)?;
    Ok(count)
}

fn dfs<P>(
    memory: Memory<P::Value>,
    slots: Vec<ExpSlot<P>>,
    outputs: Vec<Option<P::Output>>,
    limit: u64,
    count: &mut u64,
    path: &mut Vec<McEvent>,
    visit: &mut impl FnMut(ExecutionView<'_, P::Output>),
) -> Result<(), TooManyExecutions>
where
    P: Process + Clone,
    P::Output: Clone,
{
    let live: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, ExpSlot::Running { .. }))
        .map(|(i, _)| i)
        .collect();
    if live.is_empty() {
        *count += 1;
        if *count > limit {
            return Err(TooManyExecutions { limit });
        }
        visit(ExecutionView {
            outputs: &outputs,
            events: path,
        });
        return Ok(());
    }
    for &i in &live {
        let (mut memory, mut slots, mut outputs) = (memory.clone(), slots.clone(), outputs.clone());
        let ExpSlot::Running { mut proc, pending } =
            std::mem::replace(&mut slots[i], ExpSlot::Done)
        else {
            unreachable!("live slot is running");
        };
        path.push(McEvent::Step {
            pid: crate::ids::ProcessId(i),
            access: pending.access(),
        });
        let result = memory.execute(pending);
        match proc.step(Some(result)) {
            Step::Issue(op) => slots[i] = ExpSlot::Running { proc, pending: op },
            Step::Done(out) => outputs[i] = Some(out),
        }
        let res = dfs(memory, slots, outputs, limit, count, path, visit);
        path.pop();
        res?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ProcessId, RegisterId};
    use crate::layout::LayoutBuilder;
    use crate::op::OpResult;

    #[derive(Clone)]
    struct Steps {
        reg: RegisterId,
        id: u64,
        ops: u32,
        issued: u32,
    }

    impl Process for Steps {
        type Value = u64;
        type Output = u64;

        fn step(&mut self, _prev: Option<OpResult<u64>>) -> Step<u64, u64> {
            if self.issued < self.ops {
                self.issued += 1;
                Step::Issue(Op::RegisterWrite(self.reg, self.id))
            } else {
                Step::Done(self.id)
            }
        }
    }

    fn layout_one() -> (crate::layout::Layout, RegisterId) {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        (b.build(), r)
    }

    #[test]
    fn counts_interleavings_multinomially() {
        // s1 = 2, s2 = 3: C(5, 2) = 10.
        let (layout, r) = layout_one();
        let procs = vec![
            Steps {
                reg: r,
                id: 0,
                ops: 2,
                issued: 0,
            },
            Steps {
                reg: r,
                id: 1,
                ops: 3,
                issued: 0,
            },
        ];
        let total = explore_naive(&layout, procs, 100, &mut |_| {}).unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn three_processes_count() {
        // 2 ops each: 6!/(2!2!2!) = 90.
        let (layout, r) = layout_one();
        let procs: Vec<Steps> = (0..3)
            .map(|id| Steps {
                reg: r,
                id,
                ops: 2,
                issued: 0,
            })
            .collect();
        let total = explore_naive(&layout, procs, 1000, &mut |_| {}).unwrap();
        assert_eq!(total, 90);
    }

    #[test]
    fn limit_is_enforced() {
        let (layout, r) = layout_one();
        let procs = vec![
            Steps {
                reg: r,
                id: 0,
                ops: 5,
                issued: 0,
            },
            Steps {
                reg: r,
                id: 1,
                ops: 5,
                issued: 0,
            },
        ];
        let err = explore_naive(&layout, procs, 10, &mut |_| {}).unwrap_err();
        assert_eq!(err.limit, 10);
        assert!(err.to_string().contains("shrink"));
    }

    #[test]
    fn zero_processes_yield_one_empty_execution() {
        let (layout, _) = layout_one();
        let mut visits = 0;
        let total = explore_naive::<Steps>(&layout, Vec::new(), 10, &mut |view| {
            visits += 1;
            assert!(view.outputs.is_empty());
            assert!(view.events.is_empty());
        })
        .unwrap();
        assert_eq!(total, 1);
        assert_eq!(visits, 1);
    }

    #[test]
    fn immediately_done_processes_are_visited_once() {
        let (layout, r) = layout_one();
        let procs = vec![Steps {
            reg: r,
            id: 7,
            ops: 0,
            issued: 0,
        }];
        let mut seen = Vec::new();
        explore_naive(&layout, procs, 10, &mut |view| seen.push(view.outputs[0])).unwrap();
        assert_eq!(seen, vec![Some(7)]);
    }

    #[test]
    fn events_record_the_interleaving() {
        let (layout, r) = layout_one();
        let procs = vec![
            Steps {
                reg: r,
                id: 0,
                ops: 1,
                issued: 0,
            },
            Steps {
                reg: r,
                id: 1,
                ops: 1,
                issued: 0,
            },
        ];
        let mut orders = Vec::new();
        explore_naive(&layout, procs, 10, &mut |view| {
            orders.push(
                view.events
                    .iter()
                    .map(|e| e.pid().index())
                    .collect::<Vec<_>>(),
            );
        })
        .unwrap();
        assert_eq!(orders, vec![vec![0, 1], vec![1, 0]]);
        assert!(orders.iter().all(|o| o.len() == 2));
        let _ = ProcessId(0);
    }
}

//! The dependence relation on shared-memory operations, and canonical
//! Mazurkiewicz-trace signatures built from it.
//!
//! Two operations of *different* processes are **independent** when they
//! commute: executed in either order from any state they leave the same
//! memory state and return the same results. Independent adjacent
//! operations can be swapped without changing anything any process can
//! observe, so two executions that differ only by such swaps are
//! *trace-equivalent* (they belong to the same Mazurkiewicz trace) and a
//! safety property holds on one iff it holds on the other. The DPOR
//! explorer ([`explore_dpor`](crate::mc::explore_dpor)) exploits this to
//! visit exactly one interleaving per trace.
//!
//! The relation is computed on an [`Access`] — the footprint of an
//! [`Op`] with its value payload erased but its *addressing* payload
//! (register id, snapshot component, max-register key) retained, which
//! is what makes the reduction *dynamic*: two `SnapshotUpdate`s to
//! different components commute even though their [`OpKind`]s collide.
//!
//! | pair (same object)                  | dependent?              |
//! |-------------------------------------|-------------------------|
//! | register read / read                | no                      |
//! | register read / write, write / write| yes                     |
//! | snapshot scan / scan                | no                      |
//! | snapshot update(c) / update(c′)     | iff `c == c′`           |
//! | snapshot update / scan              | yes                     |
//! | max read / read                     | no                      |
//! | max write(k) / write(k′)            | iff `k == k′`           |
//! | max write / read                    | yes                     |
//!
//! Operations on different objects are always independent; operations of
//! the same process are always dependent (program order). Max-register
//! writes with distinct keys commute because `max` is commutative and
//! both return `Ack`; equal keys conflict because the first writer's
//! value is retained (ties do not overwrite).

use crate::ids::{MaxRegisterId, ProcessId, RegisterId, SnapshotId};
use crate::op::{Op, OpKind};

/// The shared object an operation addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObjectKey {
    /// A multi-writer multi-reader register.
    Register(RegisterId),
    /// A snapshot object.
    Snapshot(SnapshotId),
    /// A max register.
    MaxRegister(MaxRegisterId),
}

/// The memory footprint of an [`Op`]: the object it addresses and how,
/// with value payloads erased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Read of a register.
    RegisterRead(RegisterId),
    /// Write of a register.
    RegisterWrite(RegisterId),
    /// Scan of a snapshot object.
    SnapshotScan(SnapshotId),
    /// Update of one snapshot component.
    SnapshotUpdate(SnapshotId, usize),
    /// Read of a max register.
    MaxRead(MaxRegisterId),
    /// Write to a max register with the given key.
    MaxWrite(MaxRegisterId, u64),
}

impl Access {
    /// The object this access addresses.
    pub fn object(self) -> ObjectKey {
        match self {
            Access::RegisterRead(id) | Access::RegisterWrite(id) => ObjectKey::Register(id),
            Access::SnapshotScan(id) | Access::SnapshotUpdate(id, _) => ObjectKey::Snapshot(id),
            Access::MaxRead(id) | Access::MaxWrite(id, _) => ObjectKey::MaxRegister(id),
        }
    }

    /// Returns `true` if this access can change object state.
    pub fn is_mutation(self) -> bool {
        matches!(
            self,
            Access::RegisterWrite(_) | Access::SnapshotUpdate(_, _) | Access::MaxWrite(_, _)
        )
    }

    /// The [`OpKind`] this access was derived from.
    pub fn kind(self) -> OpKind {
        match self {
            Access::RegisterRead(_) => OpKind::RegisterRead,
            Access::RegisterWrite(_) => OpKind::RegisterWrite,
            Access::SnapshotScan(_) => OpKind::SnapshotScan,
            Access::SnapshotUpdate(_, _) => OpKind::SnapshotUpdate,
            Access::MaxRead(_) => OpKind::MaxRead,
            Access::MaxWrite(_, _) => OpKind::MaxWrite,
        }
    }

    /// The dependence relation: `true` iff the two accesses (assumed to
    /// be by *different* processes) may fail to commute.
    ///
    /// See the module docs for the full table. The relation is
    /// symmetric and an over-approximation is always sound for the
    /// explorer (it only costs reduction), so value-equality refinements
    /// (two writes of the same value commute) are deliberately not
    /// attempted — `Access` carries no values.
    pub fn dependent(self, other: Access) -> bool {
        use Access::*;
        if self.object() != other.object() {
            return false;
        }
        match (self, other) {
            (RegisterRead(_), RegisterRead(_)) => false,
            (RegisterRead(_), RegisterWrite(_))
            | (RegisterWrite(_), RegisterRead(_))
            | (RegisterWrite(_), RegisterWrite(_)) => true,
            (SnapshotScan(_), SnapshotScan(_)) => false,
            (SnapshotUpdate(_, c1), SnapshotUpdate(_, c2)) => c1 == c2,
            (SnapshotScan(_), SnapshotUpdate(_, _)) | (SnapshotUpdate(_, _), SnapshotScan(_)) => {
                true
            }
            (MaxRead(_), MaxRead(_)) => false,
            (MaxWrite(_, k1), MaxWrite(_, k2)) => k1 == k2,
            (MaxRead(_), MaxWrite(_, _)) | (MaxWrite(_, _), MaxRead(_)) => true,
            // Different object kinds share no object; unreachable after
            // the object() guard, but spelled out for exhaustiveness.
            _ => false,
        }
    }
}

impl<V> Op<V> {
    /// Classifies this operation's memory footprint for the dependence
    /// relation (see [`Access`]).
    pub fn access(&self) -> Access {
        match self {
            Op::RegisterRead(id) => Access::RegisterRead(*id),
            Op::RegisterWrite(id, _) => Access::RegisterWrite(*id),
            Op::SnapshotScan(id) => Access::SnapshotScan(*id),
            Op::SnapshotUpdate(id, component, _) => Access::SnapshotUpdate(*id, *component),
            Op::MaxRead(id) => Access::MaxRead(*id),
            Op::MaxWrite(id, key, _) => Access::MaxWrite(*id, *key),
        }
    }
}

/// One scheduled event in a model-checked execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum McEvent {
    /// A process executed its pending operation (with this footprint).
    Step {
        /// The process that took the step.
        pid: ProcessId,
        /// The footprint of the executed operation.
        access: Access,
    },
    /// A process crashed permanently; it takes no further steps.
    Crash {
        /// The crashed process.
        pid: ProcessId,
    },
}

impl McEvent {
    /// The process the event belongs to.
    pub fn pid(self) -> ProcessId {
        match self {
            McEvent::Step { pid, .. } | McEvent::Crash { pid } => pid,
        }
    }

    /// Event-level independence: program order makes same-process events
    /// dependent; steps of different processes follow [`Access::dependent`];
    /// a crash commutes with any other process's step (it touches no
    /// memory) but conflicts with other crashes (they compete for the
    /// shared crash budget, so one may disable the other).
    pub fn independent(self, other: McEvent) -> bool {
        if self.pid() == other.pid() {
            return false;
        }
        match (self, other) {
            (McEvent::Step { access: a, .. }, McEvent::Step { access: b, .. }) => !a.dependent(b),
            (McEvent::Crash { .. }, McEvent::Step { .. })
            | (McEvent::Step { .. }, McEvent::Crash { .. }) => true,
            (McEvent::Crash { .. }, McEvent::Crash { .. }) => false,
        }
    }
}

/// Canonical signature of the Mazurkiewicz trace an execution belongs
/// to: the process-id sequence of the trace's lexicographically least
/// linearization.
///
/// Two executions have equal signatures iff they are trace-equivalent
/// (reachable from each other by swapping adjacent independent events).
/// The signature is computed by a greedy topological sort of the
/// execution's dependence partial order (program order plus
/// [`McEvent::independent`]), always emitting the ready event of the
/// smallest process id. Used by tests to prove the DPOR explorer covers
/// every trace the naive enumerator covers.
pub fn trace_signature(events: &[McEvent]) -> Vec<usize> {
    let n = events.len();
    // preds[j] = number of i < j with events[i] dependent on events[j]
    // that have not been emitted yet; succs adjacency for decrementing.
    let mut pred_count = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        for i in 0..j {
            if !events[i].independent(events[j]) {
                pred_count[j] += 1;
                succs[i].push(j);
            }
        }
    }
    let mut emitted = vec![false; n];
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Smallest-pid ready event; ties broken by position, which for
        // events of one process is program order.
        let next = (0..n)
            .filter(|&j| !emitted[j] && pred_count[j] == 0)
            .min_by_key(|&j| (events[j].pid().index(), j))
            .expect("dependence order of a valid execution is acyclic");
        emitted[next] = true;
        out.push(events[next].pid().index());
        for &s in &succs[next] {
            pred_count[s] -= 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: usize) -> RegisterId {
        RegisterId(i)
    }

    #[test]
    fn op_access_classification() {
        assert_eq!(
            Op::RegisterWrite(r(1), 9u64).access(),
            Access::RegisterWrite(r(1))
        );
        assert_eq!(
            Op::<u64>::SnapshotScan(SnapshotId(2)).access(),
            Access::SnapshotScan(SnapshotId(2))
        );
        assert_eq!(
            Op::MaxWrite(MaxRegisterId(0), 7, 70u64).access(),
            Access::MaxWrite(MaxRegisterId(0), 7)
        );
        assert!(Access::RegisterWrite(r(0)).is_mutation());
        assert!(!Access::MaxRead(MaxRegisterId(0)).is_mutation());
        assert_eq!(Access::RegisterRead(r(3)).kind(), OpKind::RegisterRead);
    }

    #[test]
    fn different_objects_are_independent() {
        assert!(!Access::RegisterWrite(r(0)).dependent(Access::RegisterWrite(r(1))));
        assert!(!Access::RegisterWrite(r(0)).dependent(Access::SnapshotScan(SnapshotId(0))));
    }

    #[test]
    fn register_dependence() {
        assert!(!Access::RegisterRead(r(0)).dependent(Access::RegisterRead(r(0))));
        assert!(Access::RegisterRead(r(0)).dependent(Access::RegisterWrite(r(0))));
        assert!(Access::RegisterWrite(r(0)).dependent(Access::RegisterWrite(r(0))));
    }

    #[test]
    fn snapshot_components_commute() {
        let s = SnapshotId(0);
        assert!(!Access::SnapshotUpdate(s, 0).dependent(Access::SnapshotUpdate(s, 1)));
        assert!(Access::SnapshotUpdate(s, 1).dependent(Access::SnapshotUpdate(s, 1)));
        assert!(Access::SnapshotUpdate(s, 0).dependent(Access::SnapshotScan(s)));
        assert!(!Access::SnapshotScan(s).dependent(Access::SnapshotScan(s)));
    }

    #[test]
    fn max_register_writes_with_distinct_keys_commute() {
        let m = MaxRegisterId(0);
        assert!(!Access::MaxWrite(m, 1).dependent(Access::MaxWrite(m, 2)));
        assert!(Access::MaxWrite(m, 2).dependent(Access::MaxWrite(m, 2)));
        assert!(Access::MaxWrite(m, 1).dependent(Access::MaxRead(m)));
        assert!(!Access::MaxRead(m).dependent(Access::MaxRead(m)));
    }

    #[test]
    fn dependence_is_symmetric() {
        let accesses = [
            Access::RegisterRead(r(0)),
            Access::RegisterWrite(r(0)),
            Access::SnapshotScan(SnapshotId(0)),
            Access::SnapshotUpdate(SnapshotId(0), 0),
            Access::SnapshotUpdate(SnapshotId(0), 1),
            Access::MaxRead(MaxRegisterId(0)),
            Access::MaxWrite(MaxRegisterId(0), 3),
            Access::MaxWrite(MaxRegisterId(0), 4),
        ];
        for &a in &accesses {
            for &b in &accesses {
                assert_eq!(a.dependent(b), b.dependent(a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn crash_events_commute_with_other_processes_only() {
        let step = McEvent::Step {
            pid: ProcessId(0),
            access: Access::RegisterWrite(r(0)),
        };
        let crash_same = McEvent::Crash { pid: ProcessId(0) };
        let crash_other = McEvent::Crash { pid: ProcessId(1) };
        assert!(!step.independent(crash_same));
        assert!(step.independent(crash_other));
        assert!(!crash_other.independent(McEvent::Crash { pid: ProcessId(2) }));
    }

    #[test]
    fn signature_identifies_traces() {
        let w = |pid: usize, reg: usize| McEvent::Step {
            pid: ProcessId(pid),
            access: Access::RegisterWrite(r(reg)),
        };
        // Independent writes to different registers: both orders are the
        // same trace.
        assert_eq!(
            trace_signature(&[w(0, 0), w(1, 1)]),
            trace_signature(&[w(1, 1), w(0, 0)])
        );
        // Conflicting writes to one register: orders are distinct traces.
        assert_ne!(
            trace_signature(&[w(0, 0), w(1, 0)]),
            trace_signature(&[w(1, 0), w(0, 0)])
        );
    }

    #[test]
    fn signature_respects_program_order() {
        // p0 writes r0 then r1; p1 reads r2. The p1 read commutes with
        // everything, so all three interleavings share one signature.
        let e0 = McEvent::Step {
            pid: ProcessId(0),
            access: Access::RegisterWrite(r(0)),
        };
        let e1 = McEvent::Step {
            pid: ProcessId(0),
            access: Access::RegisterWrite(r(1)),
        };
        let q = McEvent::Step {
            pid: ProcessId(1),
            access: Access::RegisterRead(r(2)),
        };
        let s1 = trace_signature(&[e0, e1, q]);
        let s2 = trace_signature(&[e0, q, e1]);
        let s3 = trace_signature(&[q, e0, e1]);
        assert_eq!(s1, s2);
        assert_eq!(s2, s3);
        assert_eq!(s1, vec![0, 0, 1]);
    }
}

//! Sleep-set dynamic partial-order reduction with crash-fault
//! injection.
//!
//! # The explorer
//!
//! [`explore_dpor`] walks the tree of interleavings like the naive
//! enumerator, but prunes with **sleep sets** (Godefroid): after a
//! branch explores event `e` from a node, `e` is added to the sleep set
//! of the later sibling branches; a child inherits every slept event
//! that is [independent](crate::mc::McEvent::independent) of the edge
//! taken. A node whose every enabled event is asleep is abandoned — any
//! continuation from it would be trace-equivalent to an execution some
//! earlier sibling already covered. Because every live process always
//! has exactly one enabled operation (shared-memory ops never block),
//! the enabled set only shrinks as processes finish, which is the
//! friendly "non-blocking" case for sleep sets: the walk visits **at
//! least one interleaving of every Mazurkiewicz trace** (the classical
//! deadlock-preservation theorem — every maximal execution's final
//! state is reached) and **no two visited maximal executions are
//! equivalent** (the first point where two equivalent executions
//! diverge would have put one's event to sleep in the other). The
//! execution count therefore *equals* the trace count, which tests
//! verify against [`trace_signature`](crate::mc::trace_signature) sets
//! computed from the naive enumeration.
//!
//! # Crash injection
//!
//! With a non-zero [`McOptions::max_crashes`] budget, every live
//! process additionally has a *crash event* enabled at every node:
//! taking it permanently removes the process (its output stays `None`,
//! exactly as a process starved by a finite
//! [`FixedSchedule`](crate::schedule::FixedSchedule) — in the
//! asynchronous model a crash is indistinguishable from never being
//! scheduled again, the same semantics as
//! [`CrashSubset`](crate::schedule::CrashSubset)). Crash events take
//! part in the reduction: a crash touches no shared memory, so it
//! commutes with every other process's step, and all the interleavings
//! of "p crashes after its k-th operation" collapse into one trace per
//! (truncation, trace-of-survivors) pair. Two crash events conflict
//! with each other (they compete for the budget) and with their own
//! process's steps (crashing before or after a step are different
//! truncations).

use std::fmt;

use crate::layout::Layout;
use crate::mc::dependence::McEvent;
use crate::mc::{ExecutionView, TooManyExecutions};
use crate::memory::Memory;
use crate::op::Op;
use crate::process::{Process, Step};
use crate::value::Value;

/// Configuration of a model-checking run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McOptions {
    /// Abort with [`TooManyExecutions`] beyond this many maximal
    /// executions.
    pub limit: u64,
    /// Crash-fault budget: at every branch point, any live process may
    /// additionally crash permanently, as long as fewer than this many
    /// processes have crashed so far.
    pub max_crashes: usize,
}

impl Default for McOptions {
    fn default() -> Self {
        Self {
            limit: 1_000_000,
            max_crashes: 0,
        }
    }
}

impl McOptions {
    /// Options with an execution limit and no crash injection.
    pub fn new(limit: u64) -> Self {
        Self {
            limit,
            max_crashes: 0,
        }
    }

    /// Sets the crash budget.
    pub fn with_crashes(mut self, max_crashes: usize) -> Self {
        self.max_crashes = max_crashes;
        self
    }
}

/// Exploration statistics reported by [`explore_dpor`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McStats {
    /// Maximal executions visited — with sleep sets this equals the
    /// number of Mazurkiewicz traces of the instance.
    pub executions: u64,
    /// Events executed across the whole walk (tree edges taken).
    pub transitions: u64,
    /// Interior nodes abandoned because every enabled event was asleep.
    pub sleep_blocked: u64,
}

/// A safety violation reported by the visitor, with the exact event
/// sequence that produced it (unshrunk; see
/// [`shrink_schedule`](crate::mc::shrink_schedule)).
#[derive(Debug, Clone)]
pub struct RawViolation {
    /// The visitor's error message.
    pub message: String,
    /// The maximal execution on which the property failed.
    pub events: Vec<McEvent>,
}

/// Why a model-checking run stopped early.
#[derive(Debug, Clone)]
pub enum McError {
    /// The instance has more executions than the configured limit.
    TooManyExecutions(TooManyExecutions),
    /// The property failed on some execution.
    Violation(RawViolation),
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::TooManyExecutions(e) => e.fmt(f),
            McError::Violation(v) => write!(
                f,
                "property violated: {} (after {} events)",
                v.message,
                v.events.len()
            ),
        }
    }
}

impl std::error::Error for McError {}

enum McSlot<P: Process> {
    Running { proc: P, pending: Op<P::Value> },
    Done,
    Crashed,
}

impl<P: Process + Clone> Clone for McSlot<P>
where
    P::Value: Value,
{
    fn clone(&self) -> Self {
        match self {
            McSlot::Running { proc, pending } => McSlot::Running {
                proc: proc.clone(),
                pending: pending.clone(),
            },
            McSlot::Done => McSlot::Done,
            McSlot::Crashed => McSlot::Crashed,
        }
    }
}

struct Walk<'a, F> {
    options: McOptions,
    stats: McStats,
    path: Vec<McEvent>,
    visit: &'a mut F,
}

/// Explores one interleaving per Mazurkiewicz trace of `processes` over
/// fresh memory for `layout` (plus, with a crash budget, one per trace
/// of every crash-truncated variant), calling `visit` with every
/// maximal execution.
///
/// The visitor returns `Err(message)` to report a property violation,
/// which aborts the walk and is returned as
/// [`McError::Violation`] carrying the violating event sequence.
///
/// # Errors
///
/// [`McError::TooManyExecutions`] if more than `options.limit` maximal
/// executions are visited; [`McError::Violation`] if `visit` fails.
///
/// # Examples
///
/// Two writers to *different* registers commute, so all `C(4, 2) = 6`
/// interleavings form a single trace:
///
/// ```
/// use sift_sim::mc::{explore_dpor, McOptions};
/// use sift_sim::{LayoutBuilder, Op, OpResult, Process, RegisterId, Step};
///
/// #[derive(Clone)]
/// struct TwoWrites(RegisterId, u8);
/// impl Process for TwoWrites {
///     type Value = u64;
///     type Output = ();
///     fn step(&mut self, _: Option<OpResult<u64>>) -> Step<u64, ()> {
///         self.1 += 1;
///         if self.1 <= 2 {
///             Step::Issue(Op::RegisterWrite(self.0, 1))
///         } else {
///             Step::Done(())
///         }
///     }
/// }
///
/// let mut b = LayoutBuilder::new();
/// let (r0, r1) = (b.register(), b.register());
/// let layout = b.build();
/// let procs = vec![TwoWrites(r0, 0), TwoWrites(r1, 0)];
/// let stats = explore_dpor(&layout, procs, McOptions::new(100), &mut |_| Ok(())).unwrap();
/// assert_eq!(stats.executions, 1);
/// ```
pub fn explore_dpor<P>(
    layout: &Layout,
    processes: Vec<P>,
    options: McOptions,
    visit: &mut impl FnMut(ExecutionView<'_, P::Output>) -> Result<(), String>,
) -> Result<McStats, McError>
where
    P: Process + Clone,
    P::Output: Clone,
{
    let n = processes.len();
    let mut outputs: Vec<Option<P::Output>> = vec![None; n];
    let slots: Vec<McSlot<P>> = processes
        .into_iter()
        .enumerate()
        .map(|(i, mut proc)| match proc.step(None) {
            Step::Issue(op) => McSlot::Running { proc, pending: op },
            Step::Done(out) => {
                outputs[i] = Some(out);
                McSlot::Done
            }
        })
        .collect();
    let memory = Memory::new(layout);
    let mut walk = Walk {
        options,
        stats: McStats::default(),
        path: Vec::new(),
        visit,
    };
    walk.dfs(memory, slots, outputs, 0, Vec::new())?;
    Ok(walk.stats)
}

impl<F> Walk<'_, F> {
    fn dfs<P>(
        &mut self,
        memory: Memory<P::Value>,
        slots: Vec<McSlot<P>>,
        outputs: Vec<Option<P::Output>>,
        crashes_used: usize,
        mut sleep: Vec<McEvent>,
    ) -> Result<(), McError>
    where
        P: Process + Clone,
        P::Output: Clone,
        F: FnMut(ExecutionView<'_, P::Output>) -> Result<(), String>,
    {
        // Enabled events: one step per live process, plus (budget
        // permitting) one crash per live process.
        let mut enabled: Vec<McEvent> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                McSlot::Running { pending, .. } => Some(McEvent::Step {
                    pid: crate::ids::ProcessId(i),
                    access: pending.access(),
                }),
                _ => None,
            })
            .collect();
        if enabled.is_empty() {
            self.stats.executions += 1;
            if self.stats.executions > self.options.limit {
                return Err(McError::TooManyExecutions(TooManyExecutions {
                    limit: self.options.limit,
                }));
            }
            return (self.visit)(ExecutionView {
                outputs: &outputs,
                events: &self.path,
            })
            .map_err(|message| {
                McError::Violation(RawViolation {
                    message,
                    events: self.path.clone(),
                })
            });
        }
        if crashes_used < self.options.max_crashes {
            let crashes: Vec<McEvent> = enabled
                .iter()
                .map(|e| McEvent::Crash { pid: e.pid() })
                .collect();
            enabled.extend(crashes);
        }

        let mut explored_any = false;
        for event in enabled {
            if sleep.iter().any(|s| {
                s.pid() == event.pid()
                    && std::mem::discriminant(s) == std::mem::discriminant(&event)
            }) {
                continue;
            }
            explored_any = true;
            self.stats.transitions += 1;

            let mut memory = memory.clone();
            let mut slots: Vec<McSlot<P>> = slots.clone();
            let mut outputs = outputs.clone();
            let mut crashes = crashes_used;
            let i = event.pid().index();
            match event {
                McEvent::Step { .. } => {
                    let McSlot::Running { mut proc, pending } =
                        std::mem::replace(&mut slots[i], McSlot::Done)
                    else {
                        unreachable!("enabled step on a non-running slot");
                    };
                    let result = memory.execute(pending);
                    match proc.step(Some(result)) {
                        Step::Issue(op) => slots[i] = McSlot::Running { proc, pending: op },
                        Step::Done(out) => outputs[i] = Some(out),
                    }
                }
                McEvent::Crash { .. } => {
                    slots[i] = McSlot::Crashed;
                    crashes += 1;
                }
            }

            let child_sleep: Vec<McEvent> = sleep
                .iter()
                .filter(|s| s.independent(event))
                .copied()
                .collect();
            self.path.push(event);
            let res = self.dfs(memory, slots, outputs, crashes, child_sleep);
            self.path.pop();
            res?;

            sleep.push(event);
        }
        if !explored_any {
            self.stats.sleep_blocked += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RegisterId;
    use crate::layout::LayoutBuilder;
    use crate::mc::naive::explore_naive;
    use crate::mc::trace_signature;
    use crate::op::OpResult;
    use std::collections::HashSet;

    /// Writes `id` to `reg` `ops` times, then returns `id`.
    #[derive(Clone)]
    struct Writer {
        reg: RegisterId,
        id: u64,
        ops: u32,
        issued: u32,
    }

    impl Writer {
        fn new(reg: RegisterId, id: u64, ops: u32) -> Self {
            Self {
                reg,
                id,
                ops,
                issued: 0,
            }
        }
    }

    impl Process for Writer {
        type Value = u64;
        type Output = u64;

        fn step(&mut self, _prev: Option<OpResult<u64>>) -> Step<u64, u64> {
            if self.issued < self.ops {
                self.issued += 1;
                Step::Issue(Op::RegisterWrite(self.reg, self.id))
            } else {
                Step::Done(self.id)
            }
        }
    }

    #[test]
    fn disjoint_registers_collapse_to_one_trace() {
        let mut b = LayoutBuilder::new();
        let regs = b.registers(3);
        let layout = b.build();
        let procs: Vec<Writer> = (0..3).map(|i| Writer::new(regs[i], i as u64, 3)).collect();
        let stats = explore_dpor(&layout, procs, McOptions::new(100), &mut |view| {
            assert_eq!(view.outputs.len(), 3);
            assert!(view.outputs.iter().all(Option::is_some));
            Ok(())
        })
        .unwrap();
        // Naive would visit 9!/(3!3!3!) = 1680 interleavings.
        assert_eq!(stats.executions, 1);
    }

    #[test]
    fn conflicting_writes_match_naive_traces_exactly() {
        let build = || {
            let mut b = LayoutBuilder::new();
            let r = b.register();
            let layout = b.build();
            let procs = vec![Writer::new(r, 0, 2), Writer::new(r, 1, 2)];
            (layout, procs)
        };

        let (layout, procs) = build();
        let mut naive_sigs = HashSet::new();
        let naive_total = explore_naive(&layout, procs, 1000, &mut |view| {
            naive_sigs.insert(trace_signature(view.events));
        })
        .unwrap();
        // All ops conflict, so every interleaving is its own trace.
        assert_eq!(naive_total, 6);
        assert_eq!(naive_sigs.len(), 6);

        let (layout, procs) = build();
        let mut dpor_sigs = HashSet::new();
        let stats = explore_dpor(&layout, procs, McOptions::new(1000), &mut |view| {
            assert!(
                dpor_sigs.insert(trace_signature(view.events)),
                "trace visited twice"
            );
            Ok(())
        })
        .unwrap();
        assert_eq!(stats.executions, 6);
        assert_eq!(dpor_sigs, naive_sigs);
    }

    #[test]
    fn mixed_instance_visits_every_trace_once() {
        // p0 and p1 conflict on r0; p2 is off on its own register.
        let build = || {
            let mut b = LayoutBuilder::new();
            let r0 = b.register();
            let r2 = b.register();
            let layout = b.build();
            let procs = vec![
                Writer::new(r0, 0, 2),
                Writer::new(r0, 1, 2),
                Writer::new(r2, 2, 2),
            ];
            (layout, procs)
        };

        let (layout, procs) = build();
        let mut naive_sigs = HashSet::new();
        let naive_total = explore_naive(&layout, procs, 10_000, &mut |view| {
            naive_sigs.insert(trace_signature(view.events));
        })
        .unwrap();
        assert_eq!(naive_total, 90); // 6!/(2!2!2!)

        let (layout, procs) = build();
        let mut dpor_sigs = HashSet::new();
        let stats = explore_dpor(&layout, procs, McOptions::new(10_000), &mut |view| {
            assert!(
                dpor_sigs.insert(trace_signature(view.events)),
                "trace visited twice"
            );
            Ok(())
        })
        .unwrap();
        assert_eq!(dpor_sigs, naive_sigs);
        assert_eq!(stats.executions, naive_sigs.len() as u64);
        assert_eq!(stats.executions, 6); // p2 contributes no new traces
    }

    #[test]
    fn crash_injection_enumerates_truncations() {
        // Two single-write processes on one register, budget 1:
        // no-crash traces {01, 10}, plus "p0 crashed" and "p1 crashed".
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let layout = b.build();
        let procs = vec![Writer::new(r, 0, 1), Writer::new(r, 1, 1)];
        let mut outcomes = HashSet::new();
        let stats = explore_dpor(
            &layout,
            procs,
            McOptions::new(100).with_crashes(1),
            &mut |view| {
                outcomes.insert(view.outputs.to_vec());
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(stats.executions, 4);
        assert!(outcomes.contains(&vec![Some(0), Some(1)]));
        assert!(outcomes.contains(&vec![None, Some(1)]));
        assert!(outcomes.contains(&vec![Some(0), None]));
        assert!(!outcomes.contains(&vec![None, None]), "budget respected");
    }

    #[test]
    fn crash_budget_two_reaches_the_empty_execution() {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let layout = b.build();
        let procs = vec![Writer::new(r, 0, 1), Writer::new(r, 1, 1)];
        let mut saw_all_crashed = false;
        explore_dpor(
            &layout,
            procs,
            McOptions::new(100).with_crashes(2),
            &mut |view| {
                if view.outputs.iter().all(Option::is_none) {
                    saw_all_crashed = true;
                }
                Ok(())
            },
        )
        .unwrap();
        assert!(saw_all_crashed);
    }

    #[test]
    fn violation_carries_the_event_path() {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let layout = b.build();
        let procs = vec![Writer::new(r, 0, 1), Writer::new(r, 1, 1)];
        let err = explore_dpor(&layout, procs, McOptions::new(100), &mut |view| {
            if view.events.first().map(|e| e.pid()) == Some(crate::ids::ProcessId(1)) {
                Err("p1 went first".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        match err {
            McError::Violation(v) => {
                assert_eq!(v.message, "p1 went first");
                assert_eq!(v.events.len(), 2);
                assert_eq!(v.events[0].pid().index(), 1);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn execution_limit_is_enforced() {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let layout = b.build();
        let procs = vec![Writer::new(r, 0, 4), Writer::new(r, 1, 4)];
        let err = explore_dpor(&layout, procs, McOptions::new(3), &mut |_| Ok(())).unwrap_err();
        assert!(matches!(err, McError::TooManyExecutions(t) if t.limit == 3));
    }

    #[test]
    fn zero_processes_visit_once() {
        let layout = LayoutBuilder::new().build();
        let mut visits = 0;
        let stats = explore_dpor::<Writer>(&layout, Vec::new(), McOptions::new(10), &mut |view| {
            visits += 1;
            assert!(view.outputs.is_empty());
            Ok(())
        })
        .unwrap();
        assert_eq!(visits, 1);
        assert_eq!(stats.executions, 1);
        assert_eq!(stats.transitions, 0);
    }
}

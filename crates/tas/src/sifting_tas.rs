//! Sifting test-and-set, after Alistarh–Aspnes (the paper's reference
//! \[1\] and the direct ancestor of its Algorithm 2).
//!
//! Each round has one register. A participant either *writes* its
//! persona (with the tuned probability `p_i`) and survives, or *reads*:
//! an empty register means it survives, a non-empty register means
//! another contender is ahead — it **loses immediately and leaves**.
//! This is exactly Algorithm 2's sift with adoption replaced by
//! elimination, which is the difference the paper calls out in §3. At
//! least one participant survives every round (the first one scheduled
//! does), and the analysis of Lemmas 2–4 bounds the expected survivors
//! by `O(1)` after `⌈log log n⌉` rounds.
//!
//! Survivors then enter a [`TournamentTas`] to
//! pick the unique winner. The tournament costs `O(log n)` node games,
//! but only the expected-`O(1)` sift survivors ever pay it; everyone
//! else leaves after at most `R = O(log log n)` register operations.
//! (Alistarh–Aspnes use an *adaptive* fallback to keep even the
//! survivors at `O(log log n)` expected steps; the tournament is our
//! simpler stand-in, recorded in `DESIGN.md`.)

use sift_core::math::{ceil_log_4_3, ceil_log_log, sifting_p};
use sift_core::{Persona, PersonaSpec};
use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{LayoutBuilder, Op, OpResult, Process, ProcessId, RegisterId, Step};

use crate::spec::TasOutcome;
use crate::tournament::{TournamentParticipant, TournamentTas};

/// A one-shot test-and-set for up to `n` participants: sift rounds in
/// front of a tournament.
///
/// # Examples
///
/// ```
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RandomInterleave;
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
/// use sift_tas::{check_tas_properties, SiftingTas};
///
/// let n = 32;
/// let mut b = LayoutBuilder::new();
/// let tas = SiftingTas::allocate(&mut b, n);
/// let layout = b.build();
/// let split = SeedSplitter::new(4);
/// let procs: Vec<_> = (0..n)
///     .map(|i| tas.participant(ProcessId(i), &mut split.stream("process", i as u64)))
///     .collect();
/// let report = Engine::new(&layout, procs)
///     .run(RandomInterleave::new(n, split.seed("schedule", 0)));
/// check_tas_properties(&report.outputs);
/// ```
#[derive(Debug, Clone)]
pub struct SiftingTas {
    registers: std::sync::Arc<Vec<RegisterId>>,
    probs: std::sync::Arc<Vec<f64>>,
    tournament: TournamentTas,
    n: usize,
}

impl SiftingTas {
    /// Allocates an instance for up to `n` participants, with
    /// `⌈log log n⌉` tuned rounds plus a short constant tail.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate(builder: &mut LayoutBuilder, n: usize) -> Self {
        assert!(n > 0, "need at least one participant");
        let aggressive = ceil_log_log(n as u64);
        // A short 1/2-tail keeps the expected survivor count ~1–2
        // without paying for full agreement (losers here merely enter
        // the tournament, they do not break safety).
        let tail = ceil_log_4_3(8.0).max(1);
        let probs: Vec<f64> = (1..=aggressive + tail)
            .map(|i| {
                if i <= aggressive {
                    sifting_p(n as u64, i)
                } else {
                    0.5
                }
            })
            .collect();
        let registers = builder.registers(probs.len());
        let tournament = TournamentTas::allocate(builder, n);
        Self {
            registers: std::sync::Arc::new(registers),
            probs: std::sync::Arc::new(probs),
            tournament,
            n,
        }
    }

    /// Number of sift rounds in front of the tournament.
    pub fn sift_rounds(&self) -> usize {
        self.probs.len()
    }

    /// The underlying tournament (for analysis).
    pub fn tournament(&self) -> &TournamentTas {
        &self.tournament
    }

    /// Creates the participant for `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid.index() >= n`.
    pub fn participant(
        &self,
        pid: ProcessId,
        rng: &mut Xoshiro256StarStar,
    ) -> SiftingTasParticipant {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        let mut own = Xoshiro256StarStar::seed_from_u64(rng.next_u64());
        let spec = PersonaSpec {
            priority_rounds: 0,
            priority_range: 0,
            write_probs: self.probs.as_ref().clone(),
        };
        let persona = Persona::generate(pid, pid.index() as u64, &spec, &mut own);
        SiftingTasParticipant {
            shared: self.clone(),
            pid,
            persona,
            rng: own,
            round: 0,
            sift_ops: 0,
            stage: Stage::Sift,
        }
    }
}

#[derive(Debug)]
enum Stage {
    Sift,
    AwaitSift,
    Tournament {
        sub: Box<TournamentParticipant>,
        started: bool,
    },
    Finished,
}

/// Single-use participant of [`SiftingTas`].
#[derive(Debug)]
pub struct SiftingTasParticipant {
    shared: SiftingTas,
    pid: ProcessId,
    persona: Persona,
    rng: Xoshiro256StarStar,
    round: usize,
    sift_ops: u64,
    stage: Stage,
}

impl SiftingTasParticipant {
    /// Operations spent in the sift prefix (what losers pay).
    pub fn sift_ops(&self) -> u64 {
        self.sift_ops
    }

    /// Whether this participant reached the tournament.
    pub fn reached_tournament(&self) -> bool {
        matches!(self.stage, Stage::Tournament { .. } | Stage::Finished)
            && self.round == self.shared.sift_rounds()
    }
}

impl Process for SiftingTasParticipant {
    type Value = Persona;
    type Output = TasOutcome;

    fn step(&mut self, mut prev: Option<OpResult<Persona>>) -> Step<Persona, TasOutcome> {
        loop {
            match std::mem::replace(&mut self.stage, Stage::Finished) {
                Stage::Sift => {
                    if self.round == self.shared.sift_rounds() {
                        let sub = self.shared.tournament.participant(self.pid, &mut self.rng);
                        self.stage = Stage::Tournament {
                            sub: Box::new(sub),
                            started: false,
                        };
                        continue;
                    }
                    let reg = self.shared.registers[self.round];
                    self.sift_ops += 1;
                    self.stage = Stage::AwaitSift;
                    return if self.persona.wants_write(self.round) {
                        Step::Issue(Op::RegisterWrite(reg, self.persona.clone()))
                    } else {
                        Step::Issue(Op::RegisterRead(reg))
                    };
                }
                Stage::AwaitSift => {
                    match prev.take().expect("resumed with sift result") {
                        OpResult::Ack => {}                 // wrote: survive
                        OpResult::RegisterValue(None) => {} // empty: survive
                        OpResult::RegisterValue(Some(_)) => {
                            // Another contender is ahead: lose and leave.
                            return Step::Done(TasOutcome::Lost);
                        }
                        other => panic!("unexpected result {other:?}"),
                    }
                    self.round += 1;
                    self.stage = Stage::Sift;
                }
                Stage::Tournament { mut sub, started } => {
                    let step = if started {
                        sub.step(prev.take())
                    } else {
                        sub.step(None)
                    };
                    match step {
                        Step::Issue(op) => {
                            self.stage = Stage::Tournament { sub, started: true };
                            return Step::Issue(op);
                        }
                        Step::Done(outcome) => return Step::Done(outcome),
                    }
                }
                Stage::Finished => panic!("participant stepped after completion"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_tas_properties;
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{BlockSequential, RandomInterleave, RoundRobin, ScheduleKind};
    use sift_sim::Engine;

    fn run(
        n: usize,
        seed: u64,
        schedule: impl sift_sim::schedule::Schedule,
    ) -> sift_sim::RunReport<SiftingTasParticipant> {
        let mut b = LayoutBuilder::new();
        let tas = SiftingTas::allocate(&mut b, n);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| tas.participant(ProcessId(i), &mut split.stream("process", i as u64)))
            .collect();
        Engine::new(&layout, procs).run(schedule)
    }

    #[test]
    fn exactly_one_winner_across_sizes_and_seeds() {
        for n in [1usize, 2, 3, 7, 16, 33] {
            for seed in 0..20 {
                let report = run(n, seed, RandomInterleave::new(n, seed + 5));
                assert!(report.all_decided(), "n={n} seed={seed}");
                check_tas_properties(&report.outputs);
            }
        }
    }

    #[test]
    fn safety_under_all_schedule_families() {
        let n = 16;
        for kind in ScheduleKind::all() {
            for seed in 0..20 {
                let mut b = LayoutBuilder::new();
                let tas = SiftingTas::allocate(&mut b, n);
                let layout = b.build();
                let split = SeedSplitter::new(seed);
                let procs: Vec<_> = (0..n)
                    .map(|i| tas.participant(ProcessId(i), &mut split.stream("process", i as u64)))
                    .collect();
                let report =
                    Engine::new(&layout, procs).run(kind.build(n, split.seed("schedule", 0)));
                check_tas_properties(&report.outputs);
            }
        }
    }

    #[test]
    fn losers_leave_after_few_steps() {
        // Most participants must lose within the sift prefix: their
        // step count is at most the number of sift rounds.
        let n = 256;
        let mut cheap_losers = 0u64;
        let mut losers = 0u64;
        for seed in 0..10 {
            let report = run(n, seed, RandomInterleave::new(n, seed + 9));
            let rounds = report.processes[0].shared.sift_rounds() as u64;
            for (i, out) in report.outputs.iter().enumerate() {
                if out == &Some(TasOutcome::Lost) {
                    losers += 1;
                    if report.metrics.per_process_steps[i] <= rounds {
                        cheap_losers += 1;
                    }
                }
            }
        }
        assert!(
            cheap_losers * 10 >= losers * 8,
            "at least 80% of losers should leave inside the sift: {cheap_losers}/{losers}"
        );
    }

    #[test]
    fn few_processes_reach_the_tournament() {
        let n = 1024;
        let mut total_survivors = 0usize;
        let trials = 10;
        for seed in 0..trials {
            let report = run(n, seed, RandomInterleave::new(n, seed + 31));
            total_survivors += report
                .processes
                .iter()
                .filter(|p| p.reached_tournament())
                .count();
        }
        let mean = total_survivors as f64 / trials as f64;
        assert!(
            mean < 8.0,
            "expected O(1) sift survivors, got {mean} on average for n={n}"
        );
    }

    #[test]
    fn first_solo_runner_wins_under_block_schedule() {
        let report = run(32, 2, BlockSequential::in_order(32));
        assert_eq!(report.outputs[0], Some(TasOutcome::Won));
        check_tas_properties(&report.outputs);
    }

    #[test]
    fn single_participant_wins() {
        let report = run(1, 0, RoundRobin::new(1));
        assert_eq!(report.outputs[0], Some(TasOutcome::Won));
    }
}

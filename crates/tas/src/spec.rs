//! The test-and-set contract and a checking harness.
//!
//! A (one-shot) randomized test-and-set object lets each participant
//! call `tas()` once and returns *win* to at most one of them:
//!
//! * **At most one winner** — in every execution.
//! * **Someone wins** — if every participant finishes, exactly one of
//!   them wins (with crashes, the would-be winner may vanish and
//!   everyone else legitimately loses).
//! * **Termination** — with probability 1 against an oblivious
//!   adversary.
//!
//! The paper's §5 discusses the tight relationship between its
//! conciliators and the sifting-based test-and-set of Alistarh–Aspnes
//! (its reference \[1\]); this crate makes that relationship concrete.

/// The result of a test-and-set invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TasOutcome {
    /// This process acquired the object (returned 0 in C parlance).
    Won,
    /// Another process acquired the object first.
    Lost,
}

impl TasOutcome {
    /// Returns `true` for [`TasOutcome::Won`].
    pub fn is_win(self) -> bool {
        matches!(self, TasOutcome::Won)
    }
}

/// Checks the test-and-set safety properties over a finished execution.
///
/// `outcomes[i]` is process `i`'s result, or `None` if it crashed.
///
/// # Panics
///
/// Panics if two processes won, or if everyone finished and nobody won.
pub fn check_tas_properties(outcomes: &[Option<TasOutcome>]) {
    let winners = outcomes.iter().flatten().filter(|o| o.is_win()).count();
    assert!(winners <= 1, "{winners} winners — test-and-set violated");
    let all_finished = outcomes.iter().all(Option::is_some);
    if all_finished && !outcomes.is_empty() {
        assert_eq!(
            winners,
            1,
            "all {} participants finished but nobody won",
            outcomes.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_one_winner() {
        check_tas_properties(&[Some(TasOutcome::Won), Some(TasOutcome::Lost), None]);
        check_tas_properties(&[Some(TasOutcome::Lost), None]);
        check_tas_properties(&[]);
        check_tas_properties(&[Some(TasOutcome::Won)]);
    }

    #[test]
    #[should_panic(expected = "2 winners")]
    fn rejects_two_winners() {
        check_tas_properties(&[Some(TasOutcome::Won), Some(TasOutcome::Won)]);
    }

    #[test]
    #[should_panic(expected = "nobody won")]
    fn rejects_all_losers_when_all_finished() {
        check_tas_properties(&[Some(TasOutcome::Lost), Some(TasOutcome::Lost)]);
    }

    #[test]
    fn is_win_helper() {
        assert!(TasOutcome::Won.is_win());
        assert!(!TasOutcome::Lost.is_win());
    }
}

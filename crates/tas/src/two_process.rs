//! Two-process test-and-set from binary consensus.
//!
//! Two processes (one per *side*) each propose their side to a
//! two-process consensus instance; the process whose side is decided
//! wins. Consensus agreement and validity give "at most one winner" and
//! "a solo participant always wins" immediately; termination with
//! probability 1 is the consensus stack's. This is the node primitive
//! of [`TournamentTas`](crate::tournament::TournamentTas).
//!
//! The underlying stack is the register-model pair the paper builds:
//! an Algorithm 2 sifting conciliator for `n = 2` alternated with the
//! `O(1)` flags adopt-commit.

use sift_adopt_commit::FlagsAc;
use sift_consensus::{ConsensusOutcome, ConsensusParticipant, ConsensusProtocol};
use sift_core::{Epsilon, Persona, SiftingConciliator};
use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{LayoutBuilder, OpResult, Process, ProcessId, Step};

use crate::spec::TasOutcome;

/// Phases pre-allocated per node: each phase agrees with probability
/// ≥ 1/2, so 24 phases fail with probability < 10⁻⁷.
const NODE_PHASES: usize = 24;

/// A one-shot test-and-set for (at most) two participants, one per
/// side.
///
/// # Examples
///
/// ```
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder};
/// use sift_tas::{check_tas_properties, TwoProcessTas};
///
/// let mut b = LayoutBuilder::new();
/// let tas = TwoProcessTas::allocate(&mut b);
/// let layout = b.build();
/// let split = SeedSplitter::new(3);
/// let procs = vec![
///     tas.participant(false, &mut split.stream("process", 0)),
///     tas.participant(true, &mut split.stream("process", 1)),
/// ];
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(2));
/// check_tas_properties(&report.outputs);
/// ```
#[derive(Debug, Clone)]
pub struct TwoProcessTas {
    consensus: ConsensusProtocol<SiftingConciliator, FlagsAc>,
}

impl TwoProcessTas {
    /// Allocates one instance.
    pub fn allocate(builder: &mut LayoutBuilder) -> Self {
        let consensus = ConsensusProtocol::allocate(
            builder,
            2,
            NODE_PHASES,
            |b| SiftingConciliator::allocate(b, 2, Epsilon::HALF),
            |b| FlagsAc::allocate(b, 2),
        );
        Self { consensus }
    }

    /// Creates the participant for `side` (`false` = side 0, `true` =
    /// side 1). At most one process may use each side.
    pub fn participant(
        &self,
        side: bool,
        rng: &mut Xoshiro256StarStar,
    ) -> TwoProcessTasParticipant {
        let pid = ProcessId(usize::from(side));
        TwoProcessTasParticipant {
            side: u64::from(side),
            inner: self.consensus.participant(pid, u64::from(side), rng),
            started: false,
        }
    }
}

/// Single-use participant of [`TwoProcessTas`].
#[derive(Debug)]
pub struct TwoProcessTasParticipant {
    side: u64,
    inner: ConsensusParticipant<SiftingConciliator, FlagsAc>,
    started: bool,
}

impl Process for TwoProcessTasParticipant {
    type Value = Persona;
    type Output = TasOutcome;

    fn step(&mut self, prev: Option<OpResult<Persona>>) -> Step<Persona, TasOutcome> {
        let step = if self.started {
            self.inner.step(prev)
        } else {
            self.started = true;
            self.inner.step(None)
        };
        match step {
            Step::Issue(op) => Step::Issue(op),
            Step::Done(ConsensusOutcome::Decided(d)) => Step::Done(if d.value == self.side {
                TasOutcome::Won
            } else {
                TasOutcome::Lost
            }),
            Step::Done(ConsensusOutcome::Exhausted { .. }) => {
                unreachable!("24 phases at delta >= 1/2 cannot realistically exhaust")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_tas_properties;
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{FixedSchedule, RandomInterleave, RoundRobin};
    use sift_sim::Engine;

    fn run(seed: u64, schedule: impl sift_sim::schedule::Schedule) -> Vec<Option<TasOutcome>> {
        let mut b = LayoutBuilder::new();
        let tas = TwoProcessTas::allocate(&mut b);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs = vec![
            tas.participant(false, &mut split.stream("process", 0)),
            tas.participant(true, &mut split.stream("process", 1)),
        ];
        let report = Engine::new(&layout, procs).run(schedule);
        report.outputs
    }

    #[test]
    fn exactly_one_winner_across_seeds() {
        for seed in 0..200 {
            let outs = run(seed, RandomInterleave::new(2, seed + 1));
            check_tas_properties(&outs);
            assert!(outs.iter().all(Option::is_some));
        }
    }

    #[test]
    fn solo_participant_wins() {
        let mut b = LayoutBuilder::new();
        let tas = TwoProcessTas::allocate(&mut b);
        let layout = b.build();
        let split = SeedSplitter::new(9);
        let procs = vec![tas.participant(true, &mut split.stream("process", 0))];
        let report = Engine::new(&layout, procs).run(RoundRobin::new(1));
        assert_eq!(report.outputs[0], Some(TasOutcome::Won));
    }

    #[test]
    fn sequential_first_runner_wins() {
        // Side 0 runs to completion alone, then side 1: side 0 must win
        // (it decides its own side solo; side 1 then adopts it).
        let mut slots = vec![0usize; 2000];
        slots.extend(vec![1usize; 2000]);
        let outs = run(5, FixedSchedule::from_indices(slots));
        assert_eq!(outs[0], Some(TasOutcome::Won));
        assert_eq!(outs[1], Some(TasOutcome::Lost));
    }

    #[test]
    fn both_sides_win_sometimes_under_contention() {
        let mut side0 = 0;
        let mut side1 = 0;
        for seed in 0..100 {
            let outs = run(seed, RandomInterleave::new(2, seed * 7 + 3));
            match (outs[0], outs[1]) {
                (Some(TasOutcome::Won), Some(TasOutcome::Lost)) => side0 += 1,
                (Some(TasOutcome::Lost), Some(TasOutcome::Won)) => side1 += 1,
                other => panic!("bad outcome {other:?}"),
            }
        }
        assert!(
            side0 > 10 && side1 > 10,
            "races should go both ways: {side0}/{side1}"
        );
    }
}

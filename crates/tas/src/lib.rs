//! # sift-tas — test-and-set from sifting
//!
//! The paper's §5 points out that its conciliators share machinery with
//! the sub-logarithmic test-and-set of Alistarh–Aspnes (reference \[1\]):
//! Algorithm 2's sift *adopts* the register value where the
//! test-and-set sift *eliminates* the reader. This crate builds that
//! family:
//!
//! * [`TwoProcessTas`] — a two-participant test-and-set from binary
//!   consensus (the node primitive).
//! * [`TournamentTas`] — the classic `⌈log₂ n⌉`-level tournament of
//!   two-process nodes.
//! * [`SiftingTas`] — `O(log log n)` sift rounds in front of the
//!   tournament: losers leave after a handful of register operations,
//!   and only an expected `O(1)` survivors pay for the climb.
//!
//! All objects are one-shot, wait-free state machines over
//! [`sift_sim::Process`], checked against the test-and-set contract in
//! [`spec`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod sifting_tas;
pub mod spec;
pub mod tournament;
pub mod two_process;

pub use sifting_tas::{SiftingTas, SiftingTasParticipant};
pub use spec::{check_tas_properties, TasOutcome};
pub use tournament::{TournamentParticipant, TournamentTas};
pub use two_process::{TwoProcessTas, TwoProcessTasParticipant};

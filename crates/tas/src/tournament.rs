//! Tournament test-and-set: a binary tree of two-process nodes.
//!
//! Process `i` starts at leaf `i` and climbs toward the root; at each
//! internal node it plays the node's [`TwoProcessTas`] on the side it
//! arrived from (left/right child). Winning all `⌈log₂ n⌉` levels wins
//! the object; losing anywhere loses overall. At most one process
//! ascends from each subtree, so every node really has at most one
//! participant per side.
//!
//! This is the classic fallback structure; on its own it costs
//! `O(log n)` node games per process. [`SiftingTas`](crate::SiftingTas)
//! puts sift rounds in front so only `O(1)` processes (in expectation)
//! ever pay for the climb.

use std::sync::Arc;

use sift_core::Persona;
use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{LayoutBuilder, OpResult, Process, ProcessId, Step};

use crate::spec::TasOutcome;
use crate::two_process::{TwoProcessTas, TwoProcessTasParticipant};

/// A one-shot test-and-set for up to `n` participants, as a tournament
/// of two-process nodes.
///
/// # Examples
///
/// ```
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
/// use sift_tas::{check_tas_properties, TournamentTas};
///
/// let n = 5;
/// let mut b = LayoutBuilder::new();
/// let tas = TournamentTas::allocate(&mut b, n);
/// let layout = b.build();
/// let split = SeedSplitter::new(2);
/// let procs: Vec<_> = (0..n)
///     .map(|i| tas.participant(ProcessId(i), &mut split.stream("process", i as u64)))
///     .collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
/// check_tas_properties(&report.outputs);
/// ```
#[derive(Debug, Clone)]
pub struct TournamentTas {
    /// Heap-ordered internal nodes: root at index 1, children of `i` at
    /// `2i` and `2i+1`; indices `leaf_base..2·leaf_base` are leaves.
    nodes: Arc<Vec<TwoProcessTas>>,
    leaf_base: usize,
    n: usize,
}

impl TournamentTas {
    /// Allocates an instance for up to `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate(builder: &mut LayoutBuilder, n: usize) -> Self {
        assert!(n > 0, "need at least one participant");
        let leaf_base = n.next_power_of_two();
        // Internal nodes are indices 1..leaf_base; index 0 is unused.
        let nodes = (0..leaf_base)
            .map(|_| TwoProcessTas::allocate(builder))
            .collect();
        Self {
            nodes: Arc::new(nodes),
            leaf_base,
            n,
        }
    }

    /// Number of tournament levels a participant climbs.
    pub fn levels(&self) -> u32 {
        self.leaf_base.trailing_zeros()
    }

    /// Number of participants supported.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Creates the participant for `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid.index() >= n`.
    pub fn participant(
        &self,
        pid: ProcessId,
        rng: &mut Xoshiro256StarStar,
    ) -> TournamentParticipant {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        let own = Xoshiro256StarStar::seed_from_u64(rng.next_u64());
        let mut participant = TournamentParticipant {
            shared: self.clone(),
            position: self.leaf_base + pid.index(),
            rng: own,
            current: None,
            started: false,
        };
        participant.enter_next_node();
        participant
    }
}

/// Single-use participant of [`TournamentTas`].
#[derive(Debug)]
pub struct TournamentParticipant {
    shared: TournamentTas,
    /// Current heap position (a leaf initially; 1 after winning the
    /// root's child game... the participant has won overall once it
    /// would move to position 0).
    position: usize,
    rng: Xoshiro256StarStar,
    current: Option<TwoProcessTasParticipant>,
    started: bool,
}

impl TournamentParticipant {
    /// Sets up the game at the parent of `self.position`, if any.
    fn enter_next_node(&mut self) {
        let parent = self.position / 2;
        if parent == 0 {
            self.current = None; // climbed past the root: overall win
            return;
        }
        let side = self.position % 2 == 1;
        let node = &self.shared.nodes[parent];
        self.current = Some(node.participant(side, &mut self.rng));
        self.position = parent;
        self.started = false;
    }
}

impl Process for TournamentParticipant {
    type Value = Persona;
    type Output = TasOutcome;

    fn step(&mut self, mut prev: Option<OpResult<Persona>>) -> Step<Persona, TasOutcome> {
        loop {
            let Some(game) = self.current.as_mut() else {
                return Step::Done(TasOutcome::Won);
            };
            let step = if self.started {
                game.step(prev.take())
            } else {
                self.started = true;
                game.step(None)
            };
            match step {
                Step::Issue(op) => return Step::Issue(op),
                Step::Done(TasOutcome::Lost) => return Step::Done(TasOutcome::Lost),
                Step::Done(TasOutcome::Won) => self.enter_next_node(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_tas_properties;
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{BlockSequential, RandomInterleave, RoundRobin};
    use sift_sim::Engine;

    fn run(
        n: usize,
        seed: u64,
        schedule: impl sift_sim::schedule::Schedule,
    ) -> Vec<Option<TasOutcome>> {
        let mut b = LayoutBuilder::new();
        let tas = TournamentTas::allocate(&mut b, n);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| tas.participant(ProcessId(i), &mut split.stream("process", i as u64)))
            .collect();
        Engine::new(&layout, procs).run(schedule).outputs
    }

    #[test]
    fn exactly_one_winner_for_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 8, 13, 16] {
            for seed in 0..20 {
                let outs = run(n, seed, RandomInterleave::new(n, seed + 77));
                assert!(outs.iter().all(Option::is_some), "n={n} seed={seed}");
                check_tas_properties(&outs);
            }
        }
    }

    #[test]
    fn block_schedule_first_process_wins() {
        // Running solo to completion, process 0 wins every node game it
        // plays (solo consensus decides its own side).
        let outs = run(8, 3, BlockSequential::in_order(8));
        assert_eq!(outs[0], Some(TasOutcome::Won));
        for o in &outs[1..] {
            assert_eq!(*o, Some(TasOutcome::Lost));
        }
    }

    #[test]
    fn single_participant_wins_immediately() {
        let outs = run(1, 0, RoundRobin::new(1));
        assert_eq!(outs[0], Some(TasOutcome::Won));
    }

    #[test]
    fn levels_are_logarithmic() {
        let mut b = LayoutBuilder::new();
        let tas = TournamentTas::allocate(&mut b, 9);
        assert_eq!(tas.levels(), 4, "9 participants pad to 16 leaves");
        assert_eq!(tas.capacity(), 9);
    }

    #[test]
    fn winners_are_not_always_the_same_process() {
        use std::collections::HashSet;
        let mut winners = HashSet::new();
        for seed in 0..40 {
            let outs = run(4, seed, RandomInterleave::new(4, seed * 13 + 1));
            let w = outs
                .iter()
                .position(|o| o == &Some(TasOutcome::Won))
                .expect("one winner");
            winners.insert(w);
        }
        assert!(winners.len() >= 2, "randomness should vary the winner");
    }
}

//! Property tests for the log-bucketed histograms, with the edge cases
//! that motivated the saturating arithmetic: `u64::MAX` values, zero,
//! merges of empty histograms, and counts near the `u64` ceiling.
//!
//! `sift-obs` is dependency-free, so randomness comes from an in-file
//! SplitMix64 — deterministic seeds, no external property-test crate.

use sift_obs::{bucket_lower_bound, bucket_of, AtomicHistogram, Histogram, BUCKETS};

/// SplitMix64: tiny, seedable, and equidistributed enough for
/// generating test values.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn bucket_of_is_total_and_monotone_on_random_values() {
    let mut rng = SplitMix64(1);
    for _ in 0..10_000 {
        let a = rng.next();
        let b = rng.next();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(bucket_of(lo) <= bucket_of(hi), "monotone: {lo} vs {hi}");
        let bucket = bucket_of(a);
        assert!(bucket < BUCKETS);
        assert!(bucket_lower_bound(bucket) <= a);
    }
    assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    assert_eq!(bucket_of(0), 0);
}

#[test]
fn extreme_values_record_without_panicking() {
    let mut h = Histogram::new();
    h.record(0);
    h.record(u64::MAX);
    h.record(u64::MAX - 1);
    h.record(1);
    assert_eq!(h.count(), 4);
    assert_eq!(h.count_at(0), 1);
    assert_eq!(h.count_at(u64::MAX), 2);
    // The top bucket's quantile upper bound must still be representable.
    assert_eq!(h.quantile_upper_bound(1.0), u64::MAX);
}

#[test]
fn merge_of_empty_is_identity_both_ways() {
    let mut rng = SplitMix64(2);
    let mut h = Histogram::new();
    for _ in 0..500 {
        h.record(rng.next() >> (rng.next() % 64));
    }
    let before = h;
    h.merge(&Histogram::new());
    assert_eq!(h, before, "merging an empty histogram must change nothing");
    let mut empty = Histogram::new();
    empty.merge(&before);
    assert_eq!(empty, before, "merging into empty must copy exactly");
    let mut both = Histogram::new();
    both.merge(&Histogram::new());
    assert!(both.is_empty());
    assert_eq!(both.count(), 0);
}

#[test]
fn merge_matches_sequential_recording() {
    let mut rng = SplitMix64(3);
    let values: Vec<u64> = (0..2_000)
        .map(|_| rng.next() >> (rng.next() % 64))
        .collect();
    let mut sequential = Histogram::new();
    for &v in &values {
        sequential.record(v);
    }
    let (left_half, right_half) = values.split_at(values.len() / 3);
    let mut left = Histogram::new();
    let mut right = Histogram::new();
    for &v in left_half {
        left.record(v);
    }
    for &v in right_half {
        right.record(v);
    }
    left.merge(&right);
    assert_eq!(left, sequential);
}

#[test]
fn record_n_near_the_ceiling_saturates_instead_of_wrapping() {
    let mut h = Histogram::new();
    h.record_n(7, u64::MAX - 1);
    h.record(7);
    // One more would overflow; it must pin, not wrap to 0 or panic.
    h.record(7);
    h.record_n(7, 12345);
    assert_eq!(h.count_at(7), u64::MAX);
    assert_eq!(h.count(), u64::MAX);
    assert!(!h.is_empty());
}

#[test]
fn count_saturates_across_buckets() {
    let mut h = Histogram::new();
    h.record_n(1, u64::MAX);
    h.record_n(2, u64::MAX);
    assert_eq!(h.count(), u64::MAX, "total must saturate, not wrap");
}

#[test]
fn merge_saturates_instead_of_wrapping() {
    let mut a = Histogram::new();
    a.record_n(9, u64::MAX - 5);
    let mut b = Histogram::new();
    b.record_n(9, 100);
    a.merge(&b);
    assert_eq!(a.count_at(9), u64::MAX);
}

#[test]
fn atomic_record_saturates_at_the_ceiling() {
    let h = AtomicHistogram::new();
    h.record(42);
    let mut near_max = h.snapshot();
    near_max.record_n(42, u64::MAX - 1);
    // Rebuild the atomic at the ceiling via snapshot equivalence: the
    // atomic API has no bulk record, so saturate through single records
    // on a pre-pinned plain histogram and cross-check the CAS path with
    // a handful of records at the boundary.
    assert_eq!(near_max.count_at(42), u64::MAX);
    for _ in 0..3 {
        h.record(42);
    }
    assert_eq!(h.snapshot().count_at(42), 4, "normal path unaffected");
}

#[test]
fn atomic_and_plain_agree_on_random_streams() {
    let mut rng = SplitMix64(4);
    let atomic = AtomicHistogram::new();
    let mut plain = Histogram::new();
    for _ in 0..5_000 {
        let v = rng.next() >> (rng.next() % 64);
        atomic.record(v);
        plain.record(v);
    }
    assert_eq!(atomic.snapshot(), plain);
    atomic.reset();
    assert!(atomic.snapshot().is_empty());
}

#[test]
fn quantiles_of_random_streams_bracket_the_true_order_statistics() {
    let mut rng = SplitMix64(5);
    let mut values: Vec<u64> = (0..4_001)
        .map(|_| rng.next() >> (rng.next() % 64))
        .collect();
    let mut h = Histogram::new();
    for &v in &values {
        h.record(v);
    }
    values.sort_unstable();
    for q in [0.25, 0.5, 0.9, 0.99] {
        let true_q = values[((q * (values.len() - 1) as f64).round()) as usize];
        let bound = h.quantile_upper_bound(q);
        assert!(
            bound >= true_q,
            "q={q}: bucketed bound {bound} below true order statistic {true_q}"
        );
        // Power-of-two bucketing: the bound is within 2× (next power of
        // two minus one) of the true value.
        assert!(
            bound <= true_q.saturating_mul(2).max(1),
            "q={q}: bound {bound} looser than one bucket above {true_q}"
        );
    }
}

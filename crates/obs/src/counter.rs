//! Cache-padded striped counters and high-water-mark cells.
//!
//! The hot-path recording primitive: an increment touches only the
//! calling thread's own cache-line-padded stripe (a relaxed RMW that is
//! almost always uncontended), while the rare aggregate read pays to
//! sum all stripes — the same discipline the reclamation gate in
//! `sift-shmem::lockfree` uses for its reader pins.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Stripes per counter (power of two). Matches the reclamation gate's
/// stripe count: with up to 16 live threads every thread gets a private
/// line.
const STRIPES: usize = 16;

/// One padded stripe; the alignment keeps neighbouring stripes on
/// different cache-line pairs so concurrent increments never
/// false-share.
#[repr(align(128))]
#[derive(Debug)]
struct Stripe(AtomicU64);

/// The stripe index of the calling thread (stable for the thread's
/// lifetime; handed out round-robin from a global counter).
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
    }
    STRIPE.with(|s| *s)
}

/// A striped relaxed counter for hot-path increments from many threads.
///
/// `add`/`sub` are relaxed RMWs on the calling thread's own stripe;
/// [`sum`](StripedCounter::sum) folds all stripes (exact once writers
/// have quiesced). Stripe words wrap individually, so interleaved
/// `add`/`sub` traffic can never corrupt the total: the stripe sum is
/// computed with wrapping addition.
///
/// # Examples
///
/// ```
/// use sift_obs::StripedCounter;
/// static OPS: StripedCounter = StripedCounter::new();
/// OPS.add(3);
/// OPS.sub(1);
/// assert_eq!(OPS.sum(), 2);
/// OPS.reset();
/// ```
#[derive(Debug)]
pub struct StripedCounter {
    stripes: [Stripe; STRIPES],
}

impl Default for StripedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl StripedCounter {
    /// Creates a zeroed counter (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            stripes: [const { Stripe(AtomicU64::new(0)) }; STRIPES],
        }
    }

    /// Adds `n` to the calling thread's stripe.
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the calling thread's stripe (the stripe word
    /// may wrap; the wrapping [`sum`](Self::sum) stays correct as long
    /// as the true total is nonnegative).
    pub fn sub(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_sub(n, Ordering::Relaxed);
    }

    /// The current total across all stripes.
    pub fn sum(&self) -> u64 {
        self.stripes
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
    }

    /// Zeroes every stripe.
    pub fn reset(&self) {
        for s in &self.stripes {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A relaxed high-water-mark cell.
///
/// # Examples
///
/// ```
/// use sift_obs::MaxTracker;
/// static HWM: MaxTracker = MaxTracker::new();
/// HWM.observe(5);
/// HWM.observe(3);
/// assert_eq!(HWM.get(), 5);
/// ```
#[derive(Debug)]
pub struct MaxTracker(AtomicU64);

impl Default for MaxTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl MaxTracker {
    /// Creates a zeroed tracker (usable in `static` position).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Raises the mark to `value` if it is higher.
    pub fn observe(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// The highest observed value (0 when nothing was observed).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the mark to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_sub_sum_round_trip() {
        let c = StripedCounter::new();
        c.add(10);
        c.sub(4);
        c.add(1);
        assert_eq!(c.sum(), 7);
        c.reset();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn concurrent_adds_are_all_counted() {
        let c = Arc::new(StripedCounter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.sum(), 80_000);
    }

    #[test]
    fn cross_thread_sub_wraps_but_sums_correctly() {
        // A thread that only decrements can wrap its own stripe below
        // zero; the wrapping stripe sum must still be exact.
        let c = Arc::new(StripedCounter::new());
        c.add(1000);
        let dec = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for _ in 0..900 {
                    c.sub(1);
                }
            })
        };
        dec.join().unwrap();
        assert_eq!(c.sum(), 100);
    }

    #[test]
    fn max_tracker_keeps_peak() {
        let m = MaxTracker::new();
        assert_eq!(m.get(), 0);
        m.observe(7);
        m.observe(3);
        m.observe(9);
        m.observe(9);
        assert_eq!(m.get(), 9);
        m.reset();
        assert_eq!(m.get(), 0);
    }

    #[test]
    fn concurrent_max_is_global_peak() {
        let m = Arc::new(MaxTracker::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for k in 0..1000 {
                        m.observe(t * 1000 + k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.get(), 7999);
    }
}

//! Log-bucketed power-of-two histograms.
//!
//! Bucket `0` holds the value `0`; bucket `i ≥ 1` holds the values in
//! `[2^(i-1), 2^i)`. With 64 value bits that is [`BUCKETS`] buckets
//! total, covering every `u64` with relative resolution ≤ 2× — the
//! standard trade for latency and batch-size distributions, where the
//! interesting structure spans many decades.
//!
//! Two flavors share the bucketing:
//!
//! * [`Histogram`] — plain counts, for single-threaded accumulation and
//!   for merged snapshots. [`merge`](Histogram::merge) adds bucket-wise
//!   and therefore never loses counts; it is commutative and
//!   associative (integer sums), which is what makes parallel
//!   aggregation order-independent.
//! * [`AtomicHistogram`] — relaxed atomic counts, for concurrent
//!   recording from substrate hot paths; [`snapshot`] freezes it into a
//!   [`Histogram`].
//!
//! [`snapshot`]: AtomicHistogram::snapshot

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per value bit.
pub const BUCKETS: usize = 65;

/// The bucket index of `value`.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The smallest value landing in bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
pub fn bucket_lower_bound(index: usize) -> u64 {
    assert!(index < BUCKETS, "bucket {index} out of range");
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// A plain log-bucketed histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
        }
    }

    /// Records one observation of `value`.
    ///
    /// Bucket counts saturate at `u64::MAX` instead of overflowing —
    /// a pinned count is a better failure mode for telemetry than a
    /// debug panic or a silent release-mode wraparound to small values.
    pub fn record(&mut self, value: u64) {
        let b = bucket_of(value);
        self.counts[b] = self.counts[b].saturating_add(1);
    }

    /// Records `n` observations of `value` (saturating, like
    /// [`record`](Self::record)).
    pub fn record_n(&mut self, value: u64, n: u64) {
        let b = bucket_of(value);
        self.counts[b] = self.counts[b].saturating_add(n);
    }

    /// Total number of recorded observations, saturating at `u64::MAX`
    /// when bucket counts sum past it.
    pub fn count(&self) -> u64 {
        self.counts
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Count in the bucket that `value` would land in.
    pub fn count_at(&self, value: u64) -> u64 {
        self.counts[bucket_of(value)]
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Absorbs `other` bucket-wise. Never loses counts below the
    /// saturation point: the merged total is exactly the sum of the two
    /// totals until a bucket pins at `u64::MAX`. Commutative and
    /// associative (saturating addition of non-negative counts is
    /// both).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the exclusive
    /// upper edge of the first bucket at which the cumulative count
    /// reaches `q · total`. Returns 0 for an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Bucket 0 holds exactly {0}; bucket i ≥ 1 tops out at
                // 2^i − 1 (saturating for the final bucket).
                return match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
            }
        }
        u64::MAX
    }

    /// Renders the histogram as a stable JSON object: total count plus
    /// a sparse `[lower_bound, count]` bucket list (empty buckets are
    /// omitted, so the rendering does not depend on [`BUCKETS`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"count\": ");
        out.push_str(&self.count().to_string());
        out.push_str(", \"buckets\": [");
        let mut first = true;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("[{}, {}]", bucket_lower_bound(i), c));
        }
        out.push_str("]}");
        out
    }
}

/// A log-bucketed histogram with relaxed atomic buckets, recordable
/// from any thread without coordination.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            counts: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Records one observation of `value` (relaxed, saturating).
    ///
    /// Saturation needs a CAS loop instead of `fetch_add`; the loop
    /// only ever retries under contention on the *same* bucket, and a
    /// pinned `u64::MAX` bucket never retries at all.
    pub fn record(&self, value: u64) {
        let _ =
            self.counts[bucket_of(value)].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                (c != u64::MAX).then(|| c + 1)
            });
    }

    /// Freezes the current counts into a plain [`Histogram`]. Exact
    /// once concurrent recorders have quiesced; approximate while they
    /// are still running.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (dst, src) in h.counts.iter_mut().zip(&self.counts) {
            *dst = src.load(Ordering::Relaxed);
        }
        h
    }

    /// Zeroes every bucket.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(11), 1024);
    }

    #[test]
    fn every_value_lands_in_its_bucket_interval() {
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for probe in [v, v + 1, v + (v / 2)] {
                let b = bucket_of(probe);
                assert!(bucket_lower_bound(b) <= probe);
                if b + 1 < BUCKETS {
                    assert!(probe < bucket_lower_bound(b + 1));
                }
            }
        }
    }

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        h.record(0);
        h.record(1);
        h.record(1);
        h.record_n(100, 5);
        assert_eq!(h.count(), 8);
        assert_eq!(h.count_at(0), 1);
        assert_eq!(h.count_at(1), 2);
        assert_eq!(h.count_at(100), 5);
        assert!(!h.is_empty());
    }

    #[test]
    fn merge_conserves_counts() {
        let mut a = Histogram::new();
        a.record(3);
        a.record_n(1 << 20, 7);
        let mut b = Histogram::new();
        b.record(3);
        b.record(u64::MAX);
        let (ca, cb) = (a.count(), b.count());
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        assert_eq!(a.count_at(3), 2);
        assert_eq!(a.count_at(u64::MAX), 1);
    }

    #[test]
    fn quantile_bounds_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // The true median is 500; the bucketed bound must be within the
        // enclosing power-of-two bucket.
        let med = h.quantile_upper_bound(0.5);
        assert!((500..=1023).contains(&med), "median bound {med}");
        assert_eq!(h.quantile_upper_bound(0.0), h.quantile_upper_bound(0.001));
        let h_empty = Histogram::new();
        assert_eq!(h_empty.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn json_is_sparse_and_stable() {
        let mut h = Histogram::new();
        h.record(0);
        h.record_n(4, 3);
        let json = h.to_json();
        assert_eq!(json, "{\"count\": 4, \"buckets\": [[0, 1], [4, 3]]}");
    }

    #[test]
    fn atomic_histogram_snapshot_round_trip() {
        let h = AtomicHistogram::new();
        h.record(5);
        h.record(5);
        h.record(1 << 30);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.count_at(5), 2);
        h.reset();
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn atomic_histogram_concurrent_records_all_land() {
        use std::sync::Arc;
        let h = Arc::new(AtomicHistogram::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for k in 0..1000u64 {
                        h.record(t * 1000 + k);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 4000);
    }
}

//! Mergeable observation reports with a stable JSON rendering.

use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::json_string;

/// A named bag of observations: monotone counters, high-water maxima,
/// and log-bucketed histograms.
///
/// [`merge`](ObsReport::merge) combines two reports key-wise — counters
/// by sum, maxima by max, histograms bucket-wise — and is therefore
/// **commutative and associative**: folding any number of per-trial
/// reports produces the same result in any order and any grouping. That
/// is the property that lets the parallel experiment harness collect
/// observations from worker threads as trials complete (not in trial
/// order) and still emit byte-identical output at every `SIFT_THREADS`.
///
/// Keys are stored in `BTreeMap`s, so iteration — and the JSON
/// rendering — is deterministic.
///
/// # Examples
///
/// ```
/// use sift_obs::ObsReport;
/// let mut a = ObsReport::new();
/// a.add_count("trials", 1);
/// a.record_hist("steps", 120);
/// let mut b = ObsReport::new();
/// b.add_count("trials", 1);
/// b.record_hist("steps", 90);
/// a.merge(&b);
/// assert_eq!(a.count("trials"), 2);
/// assert_eq!(a.hist("steps").unwrap().count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsReport {
    counters: BTreeMap<String, u64>,
    maxima: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

impl ObsReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.maxima.is_empty() && self.hists.is_empty()
    }

    /// Adds `n` to the counter `name` (created at zero on first use).
    pub fn add_count(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Raises the maximum `name` to `value` if it is higher.
    pub fn observe_max(&mut self, name: &str, value: u64) {
        let slot = self.maxima.entry(name.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Records one observation of `value` into the histogram `name`.
    pub fn record_hist(&mut self, name: &str, value: u64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Merges a pre-built histogram into the histogram `name`.
    pub fn merge_hist(&mut self, name: &str, hist: &Histogram) {
        self.hists.entry(name.to_string()).or_default().merge(hist);
    }

    /// The value of counter `name` (0 when absent).
    pub fn count(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of maximum `name` (0 when absent).
    pub fn max(&self, name: &str) -> u64 {
        self.maxima.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if any observation was recorded into it.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All maxima in key order.
    pub fn maxima(&self) -> impl Iterator<Item = (&str, u64)> {
        self.maxima.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in key order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Absorbs `other`: counters add, maxima take the larger side,
    /// histograms merge bucket-wise. Commutative and associative; no
    /// count is ever lost.
    pub fn merge(&mut self, other: &ObsReport) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.maxima {
            let slot = self.maxima.entry(k.clone()).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Renders the report as a stable JSON object. Key order is the
    /// `BTreeMap` order, histograms render sparsely (see
    /// [`Histogram::to_json`]), so equal reports produce byte-equal
    /// JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        render_map(&mut out, &self.counters, |v| v.to_string());
        out.push_str("},\n  \"maxima\": {");
        render_map(&mut out, &self.maxima, |v| v.to_string());
        out.push_str("},\n  \"histograms\": {");
        render_map(&mut out, &self.hists, Histogram::to_json);
        out.push_str("}\n}\n");
        out
    }
}

fn render_map<V>(out: &mut String, map: &BTreeMap<String, V>, render: impl Fn(&V) -> String) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        out.push_str(&json_string(k));
        out.push_str(": ");
        out.push_str(&render(v));
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> ObsReport {
        // A deterministic pseudo-random report (splitmix64 stream).
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut r = ObsReport::new();
        for _ in 0..16 {
            let v = next();
            r.add_count(["a", "b", "c"][(v % 3) as usize], v % 100);
            r.observe_max(["hwm_x", "hwm_y"][(v % 2) as usize], v % 1000);
            r.record_hist(["lat", "batch"][(v % 2) as usize], v % (1 << 20));
        }
        r
    }

    #[test]
    fn counters_maxima_hists_round_trip() {
        let mut r = ObsReport::new();
        assert!(r.is_empty());
        r.add_count("ops", 3);
        r.add_count("ops", 2);
        r.observe_max("hwm", 9);
        r.observe_max("hwm", 4);
        r.record_hist("lat", 100);
        assert_eq!(r.count("ops"), 5);
        assert_eq!(r.count("absent"), 0);
        assert_eq!(r.max("hwm"), 9);
        assert_eq!(r.hist("lat").unwrap().count(), 1);
        assert!(r.hist("absent").is_none());
        assert!(!r.is_empty());
    }

    #[test]
    fn merge_is_commutative() {
        for seed in 0..8u64 {
            let (a, b) = (sample(seed), sample(seed + 100));
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge must be commutative (seed {seed})");
            assert_eq!(ab.to_json(), ba.to_json());
        }
    }

    #[test]
    fn merge_is_associative() {
        for seed in 0..8u64 {
            let (a, b, c) = (sample(seed), sample(seed + 50), sample(seed + 99));
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "merge must be associative (seed {seed})");
        }
    }

    #[test]
    fn merge_conserves_totals() {
        let (a, b) = (sample(1), sample(2));
        let total = |r: &ObsReport, k: &str| r.hist(k).map(Histogram::count).unwrap_or(0);
        let expect_lat = total(&a, "lat") + total(&b, "lat");
        let expect_counts = a.count("a") + b.count("a");
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(total(&m, "lat"), expect_lat);
        assert_eq!(m.count("a"), expect_counts);
    }

    #[test]
    fn json_is_stable_and_well_formed() {
        let mut r = ObsReport::new();
        r.add_count("z", 1);
        r.add_count("a", 2);
        r.observe_max("m", 3);
        r.record_hist("h", 0);
        let json = r.to_json();
        // BTreeMap order: "a" before "z" regardless of insertion order.
        assert!(json.find("\"a\"").unwrap() < json.find("\"z\"").unwrap());
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"maxima\""));
        assert!(json.contains("\"histograms\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Re-rendering is byte-identical.
        assert_eq!(json, r.to_json());
    }

    #[test]
    fn empty_report_renders_empty_sections() {
        let json = ObsReport::new().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }
}

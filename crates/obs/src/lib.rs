//! # sift-obs — observability primitives
//!
//! The building blocks of the observability layer threaded through the
//! substrate (`sift-shmem`), the simulator (`sift-sim`), and the
//! experiment harness (`sift-bench`):
//!
//! * [`Histogram`] / [`AtomicHistogram`] — log-bucketed power-of-two
//!   histograms (latencies, batch sizes, step counts). Merging never
//!   loses counts, and merge is commutative and associative, so
//!   aggregates are identical under any fold order — the property the
//!   parallel harness's determinism guarantee rests on.
//! * [`StripedCounter`] — a cache-padded, striped relaxed counter for
//!   hot-path increments from many threads (same striping discipline as
//!   the reclamation gate in `sift-shmem::lockfree`).
//! * [`MaxTracker`] — a relaxed high-water-mark cell.
//! * [`ObsReport`] — a named bag of counters, maxima, and histograms
//!   with a commutative [`merge`](ObsReport::merge) and a stable,
//!   dependency-free JSON rendering (`BTreeMap`-ordered keys, so the
//!   byte output is deterministic).
//!
//! The crate is dependency-free and makes no assumptions about who is
//! observing what: the substrate records CAS retries and reclamation
//! batches, the harness records per-trial step counts, and both flow
//! into the same report type.
//!
//! Counter updates are `Relaxed`: observability must never perturb the
//! memory-ordering arguments of the code it watches (see DESIGN.md,
//! "Observability"). Reads (`sum`, `snapshot`) are also relaxed and
//! therefore approximate *while writers are active*; every aggregate
//! read in this repository happens after the observed threads have been
//! joined, where relaxed reads are exact.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counter;
pub mod hist;
pub mod report;

pub use counter::{MaxTracker, StripedCounter};
pub use hist::{bucket_lower_bound, bucket_of, AtomicHistogram, Histogram, BUCKETS};
pub use report::ObsReport;

/// Escapes `s` as a JSON string literal (shared by the JSON renderers
/// here and in the harness).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\u000ab\"");
    }
}

//! Algorithm 2: the sifting conciliator for the multi-writer register
//! model.
//!
//! One multi-writer register `r_i` per round. In round `i` a persona
//! either *writes* itself to `r_i` (with probability `p_i`, pre-flipped
//! into the persona) and survives, or *reads* `r_i` and is replaced by
//! whatever it sees (surviving only if the register is still empty).
//! With `p_i = 1/√(x_{i-1})` (see [`sifting_p`](crate::math::sifting_p())
//! for a note on the paper's equation (3)) the expected number of
//! excess personae follows `x_{i+1} = 2√x_i` (Lemmas 2–3), dropping
//! below 8 after `⌈log log n⌉` rounds; `p_i = 1/2` thereafter shrinks it
//! by 3/4 per round (Lemma 4). After
//! `R = ⌈log log n⌉ + ⌈log_{4/3}(8/ε)⌉` rounds agreement holds with
//! probability at least `1 - ε` (Theorem 2). Each participant takes
//! exactly one operation per round: `R` steps.

use std::sync::Arc;

use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{LayoutBuilder, Op, OpResult, Process, ProcessId, RegisterId, Step};

use crate::conciliator::{Conciliator, RoundHistory};
use crate::math::{ceil_log_4_3, ceil_log_log, sifting_p};
use crate::params::Epsilon;
use crate::persona::{Persona, PersonaSpec};

/// Shared state of an Algorithm 2 instance.
///
/// # Examples
///
/// ```
/// use sift_core::{Conciliator, Epsilon, SiftingConciliator};
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
///
/// let n = 64;
/// let mut b = LayoutBuilder::new();
/// let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
/// let layout = b.build();
/// let split = SeedSplitter::new(11);
/// let procs: Vec<_> = (0..n)
///     .map(|i| {
///         let mut rng = split.stream("process", i as u64);
///         c.participant(ProcessId(i), i as u64, &mut rng)
///     })
///     .collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
/// // Each participant takes exactly R steps.
/// assert!(report.metrics.per_process_steps.iter().all(|&s| s == c.rounds() as u64));
/// ```
#[derive(Debug, Clone)]
pub struct SiftingConciliator {
    registers: Arc<Vec<RegisterId>>,
    probs: Arc<Vec<f64>>,
    n: usize,
    epsilon: Epsilon,
    #[cfg(feature = "mutants")]
    mutation: SiftingMutation,
}

/// Deliberately broken sifting variants, compiled only under the
/// `mutants` feature, used to mutation-test the fuzzer and the
/// statistical conformance suite: a healthy test-stack must catch every
/// variant within its CI smoke budget.
#[cfg(feature = "mutants")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiftingMutation {
    /// The unmodified protocol.
    None,
    /// Every write probability doubled (`min(1, 2·p_i)`): the `1/2`
    /// tail becomes all-writers, so tail rounds stop sifting and the
    /// disagreement rate blows past `ε`. A *statistical* mutant —
    /// caught by the conformance layer's Clopper–Pearson check, not by
    /// any single run.
    BiasedCoin,
    /// Off-by-one at the round-advance boundary: a read that finds the
    /// round's register still empty does **not** advance the round and
    /// reissues the read. A *schedule-dependent* mutant: invisible
    /// under writer-first interleavings, but any schedule that runs a
    /// reader before the round's first writer makes the reader exceed
    /// the exact `R`-step bound of Theorem 2 — which the fuzzer's
    /// step-bound invariant catches and shrinks.
    StuckRead,
}

impl SiftingConciliator {
    /// Allocates an instance with the paper's tuned probabilities:
    /// `p_i` from equation (3) for the first `⌈log log n⌉` rounds, then
    /// `1/2` for `⌈log_{4/3}(8/ε)⌉` further rounds.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate(builder: &mut LayoutBuilder, n: usize, epsilon: Epsilon) -> Self {
        assert!(n > 0, "need at least one process");
        Self::with_probabilities(builder, n, Self::tuned_probabilities(n, epsilon), epsilon)
    }

    /// The paper's per-round write probabilities for `n` processes.
    fn tuned_probabilities(n: usize, epsilon: Epsilon) -> Vec<f64> {
        let aggressive = ceil_log_log(n as u64);
        let tail = ceil_log_4_3(8.0 * epsilon.inverse()).max(1);
        (1..=aggressive + tail)
            .map(|i| {
                if i <= aggressive {
                    sifting_p(n as u64, i)
                } else {
                    0.5
                }
            })
            .collect()
    }

    /// Allocates a deliberately broken variant (see [`SiftingMutation`])
    /// for mutation-testing the fuzzer and conformance suites.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[cfg(feature = "mutants")]
    pub fn allocate_mutant(
        builder: &mut LayoutBuilder,
        n: usize,
        epsilon: Epsilon,
        mutation: SiftingMutation,
    ) -> Self {
        assert!(n > 0, "need at least one process");
        let mut probs = Self::tuned_probabilities(n, epsilon);
        if mutation == SiftingMutation::BiasedCoin {
            for p in &mut probs {
                *p = (2.0 * *p).min(1.0);
            }
        }
        let mut c = Self::with_probabilities(builder, n, probs, epsilon);
        c.mutation = mutation;
        c
    }

    /// The active mutation (`None` for instances built by
    /// [`allocate`](Self::allocate)).
    #[cfg(feature = "mutants")]
    pub fn mutation(&self) -> SiftingMutation {
        self.mutation
    }

    /// Allocates an instance with explicit per-round write
    /// probabilities, for ablations (e.g. all-`1/2` sifting, the
    /// Alistarh–Aspnes-style schedule).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `probs` is empty, or any probability is
    /// outside `(0, 1]`.
    pub fn with_probabilities(
        builder: &mut LayoutBuilder,
        n: usize,
        probs: Vec<f64>,
        epsilon: Epsilon,
    ) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(!probs.is_empty(), "need at least one round");
        assert!(
            probs.iter().all(|&p| p > 0.0 && p <= 1.0),
            "write probabilities must be in (0, 1]"
        );
        Self {
            registers: Arc::new(builder.registers(probs.len())),
            probs: Arc::new(probs),
            n,
            epsilon,
            #[cfg(feature = "mutants")]
            mutation: SiftingMutation::None,
        }
    }

    /// Number of rounds `R`.
    pub fn rounds(&self) -> usize {
        self.probs.len()
    }

    /// The per-round write probabilities.
    pub fn write_probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Number of aggressive (tuned-probability) rounds `⌈log log n⌉`.
    pub fn aggressive_rounds(&self) -> usize {
        ceil_log_log(self.n as u64) as usize
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.n
    }

    fn spec(&self) -> PersonaSpec {
        PersonaSpec {
            priority_rounds: 0,
            priority_range: 0,
            write_probs: self.probs.as_ref().clone(),
        }
    }

    /// Creates a participant that carries a pre-built persona (used by
    /// Algorithm 3, whose personae also carry the combining-stage coin).
    pub fn participant_with_persona(&self, persona: Persona) -> SiftingParticipant {
        assert!(
            persona.sifting_rounds() >= self.rounds(),
            "persona carries too few sifting choices"
        );
        SiftingParticipant {
            shared: self.clone(),
            persona,
            round: 0,
            history: Vec::with_capacity(self.rounds()),
            finished: false,
        }
    }

    /// The persona spec participants use (exposed so embedding protocols
    /// can extend it).
    pub fn persona_spec(&self) -> PersonaSpec {
        self.spec()
    }
}

impl Conciliator for SiftingConciliator {
    type Participant = SiftingParticipant;

    fn participant(
        &self,
        pid: ProcessId,
        input: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> SiftingParticipant {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        self.participant_with_persona(Persona::generate(pid, input, &self.spec(), rng))
    }

    fn steps_bound(&self) -> Option<u64> {
        Some(self.rounds() as u64)
    }

    fn agreement_probability(&self) -> f64 {
        1.0 - self.epsilon.get()
    }
}

/// Single-use participant of [`SiftingConciliator`]: exactly one register
/// operation per round.
#[derive(Debug, Clone)]
pub struct SiftingParticipant {
    shared: SiftingConciliator,
    persona: Persona,
    round: usize,
    history: Vec<ProcessId>,
    finished: bool,
}

impl SiftingParticipant {
    /// The persona currently held (the output once finished).
    pub fn persona(&self) -> &Persona {
        &self.persona
    }

    /// The round about to be executed (0-based).
    pub fn round(&self) -> usize {
        self.round
    }
}

impl Process for SiftingParticipant {
    type Value = Persona;
    type Output = Persona;

    fn step(&mut self, prev: Option<OpResult<Persona>>) -> Step<Persona, Persona> {
        if self.finished {
            panic!("participant stepped after completion");
        }
        // Absorb the result of the previous round's operation.
        if let Some(result) = prev {
            match result {
                OpResult::Ack => {} // our write: persona survives
                OpResult::RegisterValue(Some(seen)) => self.persona = seen,
                OpResult::RegisterValue(None) => {
                    // Mutant: treat an empty register as "round not
                    // started" and spin on the read instead of
                    // advancing — an off-by-one at the round boundary.
                    #[cfg(feature = "mutants")]
                    if self.shared.mutation == SiftingMutation::StuckRead {
                        return Step::Issue(Op::RegisterRead(self.shared.registers[self.round]));
                    }
                }
                other => panic!("unexpected result {other:?}"),
            }
            self.history.push(self.persona.origin());
            self.round += 1;
        }
        if self.round == self.shared.rounds() {
            self.finished = true;
            return Step::Done(self.persona.clone());
        }
        let reg = self.shared.registers[self.round];
        if self.persona.wants_write(self.round) {
            Step::Issue(Op::RegisterWrite(reg, self.persona.clone()))
        } else {
            Step::Issue(Op::RegisterRead(reg))
        }
    }
}

impl RoundHistory for SiftingParticipant {
    fn history(&self) -> &[ProcessId] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conciliator::distinct_per_round;
    use crate::math::sifting_x;
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{BlockSequential, RandomInterleave, RoundRobin, Schedule};
    use sift_sim::Engine;

    fn run(
        n: usize,
        epsilon: Epsilon,
        seed: u64,
        schedule: impl Schedule,
    ) -> sift_sim::RunReport<SiftingParticipant> {
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, n, epsilon);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        Engine::new(&layout, procs).run(schedule)
    }

    #[test]
    fn round_count_matches_theorem_2() {
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, 1 << 16, Epsilon::HALF);
        // ceil(loglog 2^16) = 4; ceil(log_{4/3} 16) = 10.
        assert_eq!(c.rounds(), 14);
        assert_eq!(c.aggressive_rounds(), 4);
        assert_eq!(c.steps_bound(), Some(14));
    }

    #[test]
    fn probabilities_follow_equation_3_then_one_half() {
        let n = 1 << 16;
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
        let probs = c.write_probabilities();
        for (i, &p) in probs.iter().enumerate() {
            if i < c.aggressive_rounds() {
                let expect = sifting_p(n as u64, i as u32 + 1);
                assert!((p - expect).abs() < 1e-12, "round {i}: {p} vs {expect}");
            } else {
                assert_eq!(p, 0.5, "tail rounds use 1/2");
            }
        }
    }

    #[test]
    fn each_participant_takes_exactly_r_steps() {
        let report = run(32, Epsilon::HALF, 2, RoundRobin::new(32));
        let rounds = report.processes[0].shared.rounds() as u64;
        for &steps in &report.metrics.per_process_steps {
            assert_eq!(steps, rounds);
        }
    }

    #[test]
    fn validity_holds() {
        for seed in 0..20 {
            let report = run(10, Epsilon::HALF, seed, RandomInterleave::new(10, seed + 1));
            for p in report.unwrap_outputs() {
                assert!(p.input() < 10);
            }
        }
    }

    #[test]
    fn personae_are_never_invented() {
        // Survivor sets only shrink: the set of origins at round i+1 is a
        // subset of the origins at round i (a persona can only be adopted
        // from a register someone wrote).
        use std::collections::HashSet;
        let report = run(24, Epsilon::HALF, 7, RandomInterleave::new(24, 8));
        let rounds = report.processes[0].shared.rounds();
        for round in 1..rounds {
            let prev: HashSet<_> = report
                .processes
                .iter()
                .map(|p| p.history()[round - 1])
                .collect();
            let next: HashSet<_> = report
                .processes
                .iter()
                .map(|p| p.history()[round])
                .collect();
            assert!(
                next.is_subset(&prev),
                "round {round}: {next:?} not a subset of {prev:?}"
            );
        }
    }

    #[test]
    fn agreement_rate_meets_theorem_2_bound() {
        let trials = 200;
        let mut disagreements = 0;
        for seed in 0..trials {
            let report = run(
                16,
                Epsilon::HALF,
                seed,
                RandomInterleave::new(16, seed + 400),
            );
            if !report.outputs_agree() {
                disagreements += 1;
            }
        }
        assert!(
            disagreements * 2 < trials,
            "disagreement rate {disagreements}/{trials} exceeds epsilon = 1/2"
        );
    }

    #[test]
    fn survivor_decay_tracks_lemma_3_on_average() {
        // Mean survivors after the aggressive rounds should be within a
        // small factor of the x_i prediction (Markov-level slack).
        let n = 256;
        let trials = 60;
        let mut total_after_aggressive = 0.0;
        let mut aggressive = 0;
        for seed in 0..trials {
            let report = run(n, Epsilon::HALF, seed as u64, RoundRobin::new(n));
            aggressive = report.processes[0].shared.aggressive_rounds();
            let counts = distinct_per_round(report.processes.iter().map(|p| p.history()));
            total_after_aggressive += (counts[aggressive - 1] - 1) as f64;
        }
        let mean = total_after_aggressive / trials as f64;
        let predicted = sifting_x(n as u64, aggressive as u32);
        assert!(
            mean <= predicted * 2.0,
            "mean excess {mean} far above prediction {predicted}"
        );
    }

    #[test]
    fn block_schedule_meets_agreement_bound() {
        let trials = 150;
        let mut disagreements = 0;
        for seed in 0..trials {
            let report = run(8, Epsilon::HALF, seed, BlockSequential::shuffled(8, seed));
            if !report.outputs_agree() {
                disagreements += 1;
            }
        }
        assert!(disagreements * 2 < trials, "{disagreements}/{trials}");
    }

    #[test]
    fn single_process_trivially_agrees() {
        let report = run(1, Epsilon::HALF, 0, RoundRobin::new(1));
        let outs = report.unwrap_outputs();
        assert_eq!(outs[0].input(), 0);
    }

    #[test]
    fn custom_probabilities_are_validated() {
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::with_probabilities(&mut b, 4, vec![0.5, 0.25], Epsilon::HALF);
        assert_eq!(c.rounds(), 2);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn zero_probability_panics() {
        let mut b = LayoutBuilder::new();
        let _ = SiftingConciliator::with_probabilities(&mut b, 4, vec![0.0], Epsilon::HALF);
    }

    #[test]
    #[should_panic(expected = "too few sifting choices")]
    fn short_persona_panics() {
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, 16, Epsilon::HALF);
        let _ = c.participant_with_persona(Persona::bare(ProcessId(0), 1));
    }
}

#[cfg(all(test, feature = "mutants"))]
mod mutant_tests {
    use super::*;
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::FixedSchedule;
    use sift_sim::Engine;

    fn mutant_procs(
        n: usize,
        seed: u64,
        mutation: SiftingMutation,
    ) -> (
        sift_sim::Layout,
        SiftingConciliator,
        Vec<SiftingParticipant>,
    ) {
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate_mutant(&mut b, n, Epsilon::HALF, mutation);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        (layout, c, procs)
    }

    #[test]
    fn none_mutation_is_the_unmodified_protocol() {
        let (_, c, _) = mutant_procs(16, 1, SiftingMutation::None);
        assert_eq!(c.mutation(), SiftingMutation::None);
        let mut b = LayoutBuilder::new();
        let reference = SiftingConciliator::allocate(&mut b, 16, Epsilon::HALF);
        assert_eq!(c.write_probabilities(), reference.write_probabilities());
    }

    #[test]
    fn biased_coin_doubles_probabilities_and_saturates_the_tail() {
        let (_, c, _) = mutant_procs(256, 1, SiftingMutation::BiasedCoin);
        let mut b = LayoutBuilder::new();
        let reference = SiftingConciliator::allocate(&mut b, 256, Epsilon::HALF);
        for (i, (&m, &r)) in c
            .write_probabilities()
            .iter()
            .zip(reference.write_probabilities())
            .enumerate()
        {
            assert!((m - (2.0 * r).min(1.0)).abs() < 1e-12, "round {i}");
        }
        // Tail rounds write with certainty: the 3/4 decay of Lemma 4 is
        // gone.
        assert_eq!(
            c.write_probabilities()[c.aggressive_rounds()..],
            vec![1.0; c.rounds() - c.aggressive_rounds()][..]
        );
    }

    #[test]
    fn stuck_read_exceeds_the_exact_step_bound_under_reader_first_schedules() {
        // Find a seed where p0 reads in round 0 (wants_write is
        // pre-flipped into the persona), then schedule p0 before any
        // writer: the mutant reissues the read, so p0 is charged more
        // than one op for round 0 and busts the exact R-step bound.
        for seed in 0..64 {
            let (layout, c, procs) = mutant_procs(4, seed, SiftingMutation::StuckRead);
            if procs[0].persona().wants_write(0) {
                continue;
            }
            let rounds = c.rounds() as u64;
            // p0 solo twice (two charged reads of the empty register),
            // then everyone round-robin to completion.
            let mut script = vec![0usize, 0];
            for _ in 0..2 * rounds {
                script.extend(0..4);
            }
            let report = Engine::new(&layout, procs).run(FixedSchedule::from_indices(script));
            assert!(
                report.metrics.per_process_ops[0] > rounds,
                "seed {seed}: expected p0 to exceed {rounds} ops, took {}",
                report.metrics.per_process_ops[0]
            );
            return;
        }
        panic!("no seed in 0..64 gave p0 a round-0 read");
    }

    #[test]
    fn stuck_read_livelocks_where_the_correct_protocol_terminates() {
        // Solo schedule: a correct participant finishes in exactly R
        // ops (writes and empty reads both advance the round), while
        // the mutant spins on its first read round forever — the
        // termination violation the fuzzer reports as a slot-limit hit.
        let (layout, c, procs) = mutant_procs(4, 0, SiftingMutation::None);
        let rounds = c.rounds() as u64;
        let p0_reads_somewhere = (0..c.rounds()).any(|r| !procs[0].persona().wants_write(r));
        assert!(p0_reads_somewhere, "seed 0 gave an all-write persona");
        let solo: Vec<usize> = vec![0; 4 * c.rounds()];
        let report = Engine::new(&layout, procs).run(
            sift_sim::schedule::FixedSchedule::from_indices(solo.iter().copied()),
        );
        assert_eq!(report.metrics.per_process_ops[0], rounds);
        assert!(report.outputs[0].is_some());

        let (layout, _, procs) = mutant_procs(4, 0, SiftingMutation::StuckRead);
        let mut engine = Engine::new(&layout, procs);
        engine.limit_slots(4 * rounds);
        let report = engine.run(sift_sim::schedule::RepeatingSchedule::new(vec![ProcessId(
            0,
        )]));
        assert_eq!(report.stop_reason, sift_sim::StopReason::SlotLimit);
        assert!(report.outputs[0].is_none());
    }
}

//! Algorithm 3: the CIL conciliator with an embedded sifter — worst-case
//! `O(log log n)` individual steps, expected `O(n)` total steps,
//! agreement probability at least 1/8 (Theorem 3).
//!
//! Structure (paper §4):
//!
//! 1. **Main loop.** Read `proposal`; if non-⊥, leave with that persona
//!    (side 1). Otherwise with probability `1/(4n)` write your persona
//!    to `proposal` and leave with it (side 1); otherwise execute one
//!    step of the embedded Algorithm 2 sifter, leaving with its result
//!    (side 0) once it finishes. The loop runs at most `R+1` iterations
//!    because each non-exiting iteration advances the sifter.
//! 2. **Combining stage.** Write the persona you left with to
//!    `output[side]`, run a binary adopt-commit on `side`; on
//!    `(commit, b)` decide `output[b]`, on `(adopt, _)` decide
//!    `output[c]` where `c` is the *coin bit carried by your persona* —
//!    the persona technique turning a pre-flipped bit into a shared
//!    coin.
//!
//! The same embedding works with Algorithm 1 as the inner conciliator
//! ([`EmbeddedConciliator::allocate_with_max_inner`] uses the
//! max-register variant so the unit-cost claim carries over), giving
//! `O(log* n)` worst-case individual steps with `O(n)` expected total.

use sift_adopt_commit::{AcOutput, AdoptCommit, BinaryAc, FlagsProposer, Verdict};
use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{LayoutBuilder, Op, OpResult, Process, ProcessId, RegisterId, Step};

use crate::conciliator::Conciliator;
use crate::max_conciliator::{MaxConciliator, MaxParticipant};
use crate::params::Epsilon;
use crate::persona::Persona;
use crate::sifting::{SiftingConciliator, SiftingParticipant};

/// The inner conciliator driven inside the CIL loop.
#[derive(Debug, Clone)]
enum Inner {
    Sifting(SiftingConciliator),
    Max(MaxConciliator),
}

/// A running inner participant.
#[derive(Debug)]
enum InnerRun {
    Sifting(SiftingParticipant),
    Max(MaxParticipant),
}

impl InnerRun {
    fn step(&mut self, prev: Option<OpResult<Persona>>) -> Step<Persona, Persona> {
        match self {
            InnerRun::Sifting(p) => p.step(prev),
            InnerRun::Max(p) => p.step(prev),
        }
    }
}

/// Shared state of an Algorithm 3 instance.
///
/// # Examples
///
/// ```
/// use sift_core::{Conciliator, EmbeddedConciliator};
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
///
/// let n = 32;
/// let mut b = LayoutBuilder::new();
/// let c = EmbeddedConciliator::allocate(&mut b, n);
/// let layout = b.build();
/// let split = SeedSplitter::new(5);
/// let procs: Vec<_> = (0..n)
///     .map(|i| {
///         let mut rng = split.stream("process", i as u64);
///         c.participant(ProcessId(i), i as u64, &mut rng)
///     })
///     .collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
/// assert!(report.all_decided());
/// ```
#[derive(Debug, Clone)]
pub struct EmbeddedConciliator {
    proposal: RegisterId,
    outputs: [RegisterId; 2],
    inner: Inner,
    combine: BinaryAc,
    n: usize,
}

impl EmbeddedConciliator {
    /// Allocates an instance embedding the Algorithm 2 sifter with
    /// `ε = 1/4`, as in Theorem 3.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate(builder: &mut LayoutBuilder, n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        let inner = Inner::Sifting(SiftingConciliator::allocate(builder, n, Epsilon::QUARTER));
        Self::finish_allocation(builder, n, inner)
    }

    /// Allocates an instance embedding the max-register Algorithm 1
    /// variant (the `O(log* n)` version discussed at the end of §4).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate_with_max_inner(builder: &mut LayoutBuilder, n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        let inner = Inner::Max(MaxConciliator::allocate(builder, n, Epsilon::QUARTER));
        Self::finish_allocation(builder, n, inner)
    }

    fn finish_allocation(builder: &mut LayoutBuilder, n: usize, inner: Inner) -> Self {
        Self {
            proposal: builder.register(),
            outputs: [builder.register(), builder.register()],
            inner,
            combine: BinaryAc::allocate(builder),
            n,
        }
    }

    /// The per-iteration proposal-write probability `1/(4n)`.
    pub fn write_probability(&self) -> f64 {
        1.0 / (4.0 * self.n as f64)
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.n
    }

    /// Worst-case iterations of the main loop (inner rounds + 1).
    pub fn loop_bound(&self) -> u64 {
        let inner_steps = match &self.inner {
            Inner::Sifting(c) => c.steps_bound().expect("sifting is bounded"),
            Inner::Max(c) => c.steps_bound().expect("max variant is bounded"),
        };
        inner_steps + 1
    }
}

impl Conciliator for EmbeddedConciliator {
    type Participant = EmbeddedParticipant;

    fn participant(
        &self,
        pid: ProcessId,
        input: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> EmbeddedParticipant {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        let mut own = Xoshiro256StarStar::seed_from_u64(rng.next_u64());
        let (persona, inner_run) = match &self.inner {
            Inner::Sifting(c) => {
                let persona = Persona::generate(pid, input, &c.persona_spec(), &mut own);
                let run = InnerRun::Sifting(c.participant_with_persona(persona.clone()));
                (persona, run)
            }
            Inner::Max(c) => {
                // The max variant generates its own persona (priorities);
                // the CIL shell and combining stage use the same persona.
                let inner = c.participant(pid, input, &mut own);
                let persona = {
                    // Extract the generated persona before any steps run.
                    inner.persona().clone()
                };
                (persona, InnerRun::Max(inner))
            }
        };
        let mut inner_run = inner_run;
        let pending_inner_op = match inner_run.step(None) {
            Step::Issue(op) => Some(op),
            Step::Done(_) => unreachable!("inner conciliators have at least one round"),
        };
        EmbeddedParticipant {
            shared: self.clone(),
            pid,
            persona,
            rng: own,
            inner: inner_run,
            pending_inner_op,
            result: None,
            phase: Phase::ReadProposal,
        }
    }

    fn steps_bound(&self) -> Option<u64> {
        // Each loop iteration costs at most 2 ops; plus output write,
        // the binary adopt-commit, and the final output read.
        let combine: u64 = <BinaryAc as AdoptCommit<Persona>>::steps_bound(&self.combine);
        Some(2 * self.loop_bound() + 1 + combine + 1)
    }

    fn agreement_probability(&self) -> f64 {
        0.125
    }
}

#[derive(Debug)]
enum Phase {
    /// About to read `proposal` (start of a main-loop iteration).
    ReadProposal,
    /// Waiting for the `proposal` read result.
    AwaitProposal,
    /// Waiting for the ack of our `proposal` write.
    AwaitProposalWrite,
    /// Waiting for the result of one inner-conciliator operation.
    AwaitInner,
    /// Waiting for the ack of the `output[side]` write.
    AwaitOutputWrite {
        side: usize,
    },
    /// Driving the binary adopt-commit proposer.
    Combine {
        ac: Box<FlagsProposer<Persona>>,
        started: bool,
    },
    /// Waiting for the final `output[target]` read.
    AwaitFinal,
    Finished,
}

/// Single-use participant of [`EmbeddedConciliator`].
#[derive(Debug)]
pub struct EmbeddedParticipant {
    shared: EmbeddedConciliator,
    pid: ProcessId,
    /// The persona we entered with (carries the combining-stage coin and
    /// the inner conciliator's bits).
    persona: Persona,
    rng: Xoshiro256StarStar,
    inner: InnerRun,
    /// The inner machine's next operation, pre-computed so the main loop
    /// can hand it out when a coin flip says "sift".
    pending_inner_op: Option<Op<Persona>>,
    /// The persona we left the main loop with.
    result: Option<Persona>,
    phase: Phase,
}

impl EmbeddedParticipant {
    /// The persona this participant entered with.
    pub fn persona(&self) -> &Persona {
        &self.persona
    }

    fn leave(&mut self, result: Persona, side: usize) -> Step<Persona, Persona> {
        self.result = Some(result.clone());
        self.phase = Phase::AwaitOutputWrite { side };
        Step::Issue(Op::RegisterWrite(self.shared.outputs[side], result))
    }
}

impl Process for EmbeddedParticipant {
    type Value = Persona;
    type Output = Persona;

    fn step(&mut self, prev: Option<OpResult<Persona>>) -> Step<Persona, Persona> {
        match std::mem::replace(&mut self.phase, Phase::Finished) {
            Phase::ReadProposal => {
                self.phase = Phase::AwaitProposal;
                Step::Issue(Op::RegisterRead(self.shared.proposal))
            }
            Phase::AwaitProposal => {
                match prev.expect("resumed with proposal value").expect_register() {
                    Some(seen) => self.leave(seen, 1),
                    None => {
                        if self.rng.bernoulli(self.shared.write_probability()) {
                            self.phase = Phase::AwaitProposalWrite;
                            Step::Issue(Op::RegisterWrite(
                                self.shared.proposal,
                                self.persona.clone(),
                            ))
                        } else {
                            let op = self
                                .pending_inner_op
                                .take()
                                .expect("inner op pending while the loop is running");
                            self.phase = Phase::AwaitInner;
                            Step::Issue(op)
                        }
                    }
                }
            }
            Phase::AwaitProposalWrite => {
                let own = self.persona.clone();
                self.leave(own, 1)
            }
            Phase::AwaitInner => {
                let result = prev.expect("resumed with inner result");
                match self.inner.step(Some(result)) {
                    Step::Issue(op) => {
                        // Stash the inner machine's next op and start the
                        // next main-loop iteration with a proposal read.
                        self.pending_inner_op = Some(op);
                        self.phase = Phase::AwaitProposal;
                        Step::Issue(Op::RegisterRead(self.shared.proposal))
                    }
                    Step::Done(persona) => self.leave(persona, 0),
                }
            }
            Phase::AwaitOutputWrite { side } => {
                let result = self.result.clone().expect("result set before output write");
                let ac = self.shared.combine.proposer(self.pid, side as u64, result);
                self.phase = Phase::Combine {
                    ac: Box::new(ac),
                    started: false,
                };
                self.step(None)
            }
            Phase::Combine { mut ac, started } => {
                let step = if started {
                    ac.step(prev)
                } else {
                    ac.step(None)
                };
                match step {
                    Step::Issue(op) => {
                        self.phase = Phase::Combine { ac, started: true };
                        Step::Issue(op)
                    }
                    Step::Done(AcOutput {
                        verdict,
                        code,
                        value,
                    }) => {
                        let target = match verdict {
                            Verdict::Commit => code as usize,
                            Verdict::Adopt => usize::from(value.coin()),
                        };
                        self.phase = Phase::AwaitFinal;
                        Step::Issue(Op::RegisterRead(self.shared.outputs[target]))
                    }
                }
            }
            Phase::AwaitFinal => {
                let value = prev
                    .expect("resumed with output register value")
                    .expect_register()
                    .expect("combining-stage target register is always initialized");
                Step::Done(value)
            }
            Phase::Finished => panic!("participant stepped after completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{BlockSequential, RandomInterleave, RoundRobin, Schedule};
    use sift_sim::Engine;

    fn run(
        n: usize,
        seed: u64,
        max_inner: bool,
        schedule: impl Schedule,
    ) -> sift_sim::RunReport<EmbeddedParticipant> {
        let mut b = LayoutBuilder::new();
        let c = if max_inner {
            EmbeddedConciliator::allocate_with_max_inner(&mut b, n)
        } else {
            EmbeddedConciliator::allocate(&mut b, n)
        };
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        Engine::new(&layout, procs).run(schedule)
    }

    #[test]
    fn terminates_with_valid_outputs() {
        for seed in 0..20 {
            let report = run(12, seed, false, RandomInterleave::new(12, seed + 31));
            for p in report.unwrap_outputs() {
                assert!(p.input() < 12, "invented value {}", p.input());
            }
        }
    }

    #[test]
    fn max_inner_variant_terminates_with_valid_outputs() {
        for seed in 0..10 {
            let report = run(12, seed, true, RandomInterleave::new(12, seed + 77));
            for p in report.unwrap_outputs() {
                assert!(p.input() < 12);
            }
        }
    }

    #[test]
    fn individual_steps_respect_worst_case_bound() {
        let n = 64;
        let mut b = LayoutBuilder::new();
        let c = EmbeddedConciliator::allocate(&mut b, n);
        let bound = c.steps_bound().expect("Algorithm 3 is bounded");
        for seed in 0..10 {
            let report = run(n, seed, false, RandomInterleave::new(n, seed + 3));
            for &steps in &report.metrics.per_process_steps {
                assert!(steps <= bound, "{steps} > bound {bound}");
            }
        }
    }

    #[test]
    fn agreement_rate_meets_one_eighth_bound() {
        // Theorem 3 guarantees only 1/8; empirically agreement is far
        // more frequent. Require comfortably above 1/8.
        let trials = 200;
        let mut agreements = 0;
        for seed in 0..trials {
            let report = run(16, seed, false, RandomInterleave::new(16, seed + 41));
            if report.outputs_agree() {
                agreements += 1;
            }
        }
        assert!(
            agreements * 8 > trials,
            "agreement rate {agreements}/{trials} below 1/8"
        );
    }

    #[test]
    fn total_work_is_linear_on_average() {
        // Theorem 3: O(n) expected total steps. The loop shuts down after
        // ~4n iterations in expectation; combine adds O(1) per process.
        let trials = 20;
        for n in [32usize, 128] {
            let mut total = 0u64;
            for seed in 0..trials {
                let report = run(n, seed, false, RoundRobin::new(n));
                total += report.metrics.total_steps;
            }
            let mean = total as f64 / trials as f64;
            assert!(
                mean < 40.0 * n as f64,
                "n={n}: mean total steps {mean} not O(n)"
            );
        }
    }

    #[test]
    fn solo_runner_stays_sublinear() {
        // The fix over plain CIL: a solo process exits after at most
        // loop_bound iterations because the embedded sifter finishes.
        let n = 256;
        let mut b = LayoutBuilder::new();
        let c = EmbeddedConciliator::allocate(&mut b, n);
        let bound = c.steps_bound().unwrap();
        assert!(
            bound < n as u64 / 2,
            "worst-case bound {bound} should be far below n={n}"
        );
        for seed in 0..5 {
            let report = run(n, seed, false, BlockSequential::in_order(n));
            assert!(report.all_decided());
            assert!(report.metrics.max_individual_steps() <= bound);
        }
    }

    #[test]
    fn loop_bound_tracks_inner_rounds() {
        let mut b = LayoutBuilder::new();
        let c = EmbeddedConciliator::allocate(&mut b, 1 << 16);
        // Inner sifter with eps = 1/4: ceil(loglog 2^16) = 4 rounds plus
        // ceil(log_{4/3} 32) = 13 tail rounds = 17; +1 = 18.
        assert_eq!(c.loop_bound(), 18);
        assert!((c.write_probability() - 1.0 / (4.0 * 65536.0)).abs() < 1e-18);
        assert_eq!(c.agreement_probability(), 0.125);
    }

    #[test]
    fn single_process_decides_its_own_input() {
        let report = run(1, 7, false, RoundRobin::new(1));
        let outs = report.unwrap_outputs();
        assert_eq!(outs[0].input(), 0);
    }
}

//! Algorithm 1: the priority-based conciliator for the unit-cost
//! snapshot model.
//!
//! Each process generates a vector of `R` random priorities for its
//! input (one per round) — together they form its persona. In round `i`
//! the process writes its current persona into snapshot array `A_i`,
//! scans `A_i`, and adopts the persona with the highest round-`i`
//! priority among those it sees. Left-to-right-maxima structure makes
//! the number of distinct surviving personae drop from `m` to `O(log m)`
//! per round (Lemma 1), so after `R = log* n + ⌈log(1/ε)⌉ + 1` rounds a
//! single persona survives with probability at least `1 - ε`
//! (Theorem 1). Each participant takes exactly `2R` operations.

use std::sync::Arc;

use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{LayoutBuilder, Op, OpResult, Process, ProcessId, ScanView, SnapshotId, Step};

use crate::conciliator::{Conciliator, RoundHistory};
use crate::math::{ceil_log2, log_star};
use crate::params::Epsilon;
use crate::persona::{Persona, PersonaSpec};

/// Shared state of an Algorithm 1 instance.
///
/// # Examples
///
/// ```
/// use sift_core::{Conciliator, Epsilon, SnapshotConciliator};
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
///
/// let n = 8;
/// let mut b = LayoutBuilder::new();
/// let c = SnapshotConciliator::allocate(&mut b, n, Epsilon::HALF);
/// let layout = b.build();
/// let split = SeedSplitter::new(7);
/// let procs: Vec<_> = (0..n)
///     .map(|i| {
///         let mut rng = split.stream("process", i as u64);
///         c.participant(ProcessId(i), i as u64, &mut rng)
///     })
///     .collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
/// let outputs = report.unwrap_outputs();
/// // Validity: every output is some process's input.
/// assert!(outputs.iter().all(|p| p.input() < n as u64));
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotConciliator {
    arrays: Arc<Vec<SnapshotId>>,
    n: usize,
    rounds: usize,
    priority_range: u64,
    epsilon: Epsilon,
}

impl SnapshotConciliator {
    /// Allocates an instance for `n` processes with failure budget
    /// `epsilon`, using the paper's parameters:
    /// `R = log* n + ⌈log(1/ε)⌉ + 1` rounds and priorities drawn from
    /// `1..=⌈R n²/ε⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate(builder: &mut LayoutBuilder, n: usize, epsilon: Epsilon) -> Self {
        assert!(n > 0, "need at least one process");
        let rounds = (log_star(n as u64) + ceil_log2(epsilon.inverse()) + 1) as usize;
        let priority_range =
            (rounds as f64 * (n as f64) * (n as f64) / epsilon.get()).ceil() as u64;
        Self::with_parameters(builder, n, rounds, priority_range, epsilon)
    }

    /// Allocates an instance with explicit round count and priority
    /// range, for ablation experiments (E13).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `rounds == 0`, or `priority_range == 0`.
    pub fn with_parameters(
        builder: &mut LayoutBuilder,
        n: usize,
        rounds: usize,
        priority_range: u64,
        epsilon: Epsilon,
    ) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(rounds > 0, "need at least one round");
        assert!(priority_range > 0, "priority range must be positive");
        Self {
            arrays: Arc::new(builder.snapshots(rounds, n)),
            n,
            rounds,
            priority_range,
            epsilon,
        }
    }

    /// Number of rounds `R`.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The priority range `⌈R n²/ε⌉`.
    pub fn priority_range(&self) -> u64 {
        self.priority_range
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.n
    }

    fn spec(&self) -> PersonaSpec {
        PersonaSpec {
            priority_rounds: self.rounds,
            priority_range: self.priority_range,
            write_probs: Vec::new(),
        }
    }
}

impl Conciliator for SnapshotConciliator {
    type Participant = SnapshotParticipant;

    fn participant(
        &self,
        pid: ProcessId,
        input: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> SnapshotParticipant {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        SnapshotParticipant {
            shared: self.clone(),
            pid,
            persona: Persona::generate(pid, input, &self.spec(), rng),
            round: 0,
            phase: Phase::Update,
            history: Vec::with_capacity(self.rounds),
        }
    }

    fn steps_bound(&self) -> Option<u64> {
        Some(2 * self.rounds as u64)
    }

    fn agreement_probability(&self) -> f64 {
        1.0 - self.epsilon.get()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Update,
    Scan,
    Finished,
}

/// Single-use participant of [`SnapshotConciliator`]: exactly `2R`
/// snapshot operations.
#[derive(Debug, Clone)]
pub struct SnapshotParticipant {
    shared: SnapshotConciliator,
    pid: ProcessId,
    persona: Persona,
    round: usize,
    phase: Phase,
    history: Vec<ProcessId>,
}

impl SnapshotParticipant {
    /// The persona currently held (the output once finished).
    pub fn persona(&self) -> &Persona {
        &self.persona
    }

    /// The round about to be executed (0-based).
    pub fn round(&self) -> usize {
        self.round
    }

    fn adopt_best(&mut self, view: &ScanView<Persona>) {
        let round = self.round;
        let best = view
            .present()
            .map(|(_, p)| p)
            .max_by_key(|p| (p.priority(round), p.origin()))
            .expect("own update precedes the scan, so the view is non-empty")
            .clone();
        self.persona = best;
    }
}

impl Process for SnapshotParticipant {
    type Value = Persona;
    type Output = Persona;

    fn step(&mut self, prev: Option<OpResult<Persona>>) -> Step<Persona, Persona> {
        match self.phase {
            Phase::Update => {
                self.phase = Phase::Scan;
                Step::Issue(Op::SnapshotUpdate(
                    self.shared.arrays[self.round],
                    self.pid.index(),
                    self.persona.clone(),
                ))
            }
            Phase::Scan => match prev.expect("resumed with update ack or scan view") {
                OpResult::Ack => Step::Issue(Op::SnapshotScan(self.shared.arrays[self.round])),
                OpResult::SnapshotView(view) => {
                    self.adopt_best(&view);
                    self.history.push(self.persona.origin());
                    self.round += 1;
                    if self.round == self.shared.rounds {
                        self.phase = Phase::Finished;
                        Step::Done(self.persona.clone())
                    } else {
                        self.phase = Phase::Update;
                        self.step(None)
                    }
                }
                other => panic!("unexpected result {other:?}"),
            },
            Phase::Finished => panic!("participant stepped after completion"),
        }
    }
}

impl RoundHistory for SnapshotParticipant {
    fn history(&self) -> &[ProcessId] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conciliator::distinct_per_round;
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{BlockSequential, RandomInterleave, RoundRobin, Schedule};
    use sift_sim::Engine;

    fn run(
        n: usize,
        epsilon: Epsilon,
        seed: u64,
        schedule: impl Schedule,
    ) -> sift_sim::RunReport<SnapshotParticipant> {
        let mut b = LayoutBuilder::new();
        let c = SnapshotConciliator::allocate(&mut b, n, epsilon);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), 100 + i as u64, &mut rng)
            })
            .collect();
        Engine::new(&layout, procs).run(schedule)
    }

    #[test]
    fn round_count_matches_theorem_1() {
        let mut b = LayoutBuilder::new();
        let c = SnapshotConciliator::allocate(&mut b, 1 << 16, Epsilon::HALF);
        // log*(2^16) = 4, ceil(log 2) = 1, + 1 => 6.
        assert_eq!(c.rounds(), 6);
        assert_eq!(c.steps_bound(), Some(12));
        assert!((c.agreement_probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn priority_range_matches_paper() {
        let mut b = LayoutBuilder::new();
        let c = SnapshotConciliator::allocate(&mut b, 10, Epsilon::new(0.1).unwrap());
        let r = c.rounds() as f64;
        assert_eq!(c.priority_range(), (r * 100.0 / 0.1).ceil() as u64);
    }

    #[test]
    fn validity_holds_in_all_runs() {
        for seed in 0..20 {
            let report = run(
                6,
                Epsilon::HALF,
                seed,
                RandomInterleave::new(6, seed + 1000),
            );
            for p in report.unwrap_outputs() {
                assert!(
                    (100..106).contains(&p.input()),
                    "invented value {}",
                    p.input()
                );
            }
        }
    }

    #[test]
    fn termination_uses_exactly_2r_steps_each() {
        let report = run(5, Epsilon::HALF, 3, RoundRobin::new(5));
        let rounds = report.processes[0].shared.rounds as u64;
        for &steps in &report.metrics.per_process_steps {
            assert_eq!(steps, 2 * rounds);
        }
    }

    #[test]
    fn agreement_rate_meets_theorem_1_bound() {
        // epsilon = 1/2; over many seeds the disagreement rate must be
        // well below 1/2 (it is far smaller in practice).
        let trials = 200;
        let mut disagreements = 0;
        for seed in 0..trials {
            let report = run(
                8,
                Epsilon::HALF,
                seed,
                RandomInterleave::new(8, seed + 5000),
            );
            if !report.outputs_agree() {
                disagreements += 1;
            }
        }
        assert!(
            disagreements * 2 < trials,
            "disagreement rate {disagreements}/{trials} exceeds epsilon = 1/2"
        );
    }

    #[test]
    fn survivor_counts_never_increase() {
        for seed in 0..10 {
            let report = run(16, Epsilon::HALF, seed, RandomInterleave::new(16, seed));
            let counts = distinct_per_round(report.processes.iter().map(|p| p.history()));
            for w in counts.windows(2) {
                assert!(w[1] <= w[0], "seed {seed}: survivors increased {counts:?}");
            }
            assert_eq!(counts.len(), report.processes[0].shared.rounds);
        }
    }

    #[test]
    fn solo_execution_keeps_own_persona() {
        let report = run(4, Epsilon::HALF, 1, BlockSequential::in_order(4));
        // The first process runs alone: it sees only itself in round 1…
        // then later processes adopt whatever wins each array. Its output
        // must still be *some* input (validity), and all outputs agree
        // here because each later block sees all earlier personae.
        let outs = report.unwrap_outputs();
        assert!(outs.iter().all(|p| (100..104).contains(&p.input())));
    }

    #[test]
    fn block_schedule_meets_agreement_bound() {
        // The solo-blocks adversary is the natural worst case here (a
        // later process disagrees with an earlier solo runner only by
        // out-prioritizing it in *every* round). Theorem 1 still bounds
        // disagreement by epsilon.
        let trials = 120;
        let mut disagreements = 0;
        for seed in 0..trials {
            let report = run(6, Epsilon::HALF, seed, BlockSequential::in_order(6));
            if !report.outputs_agree() {
                disagreements += 1;
            }
        }
        assert!(
            disagreements * 2 < trials,
            "disagreement rate {disagreements}/{trials} exceeds epsilon = 1/2"
        );
    }

    #[test]
    fn history_has_one_entry_per_round() {
        let report = run(3, Epsilon::QUARTER, 9, RoundRobin::new(3));
        for p in &report.processes {
            assert_eq!(p.history().len(), p.shared.rounds);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pid_panics() {
        let mut b = LayoutBuilder::new();
        let c = SnapshotConciliator::allocate(&mut b, 2, Epsilon::HALF);
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        let _ = c.participant(ProcessId(2), 0, &mut rng);
    }
}

//! Closed-form predictions from the paper's lemmas and theorems.
//!
//! The benchmark harness prints these next to measured values so each
//! experiment table carries its own "paper" column. All bounds are
//! *upper bounds on expectations* (the paper's style), so measured
//! values should sit at or below them, with Markov-level slack for tail
//! probabilities.

use crate::math::{ceil_log2, ceil_log_4_3, ceil_log_log, lemma1_f_iter, log_star, sifting_x};
use crate::params::Epsilon;

/// Theorem 1: round count `R = log* n + ⌈log(1/ε)⌉ + 1` of Algorithm 1.
pub fn theorem1_rounds(n: u64, epsilon: Epsilon) -> u64 {
    (log_star(n) + ceil_log2(epsilon.inverse()) + 1) as u64
}

/// Theorem 1: individual step complexity `2R` of Algorithm 1.
pub fn theorem1_steps(n: u64, epsilon: Epsilon) -> u64 {
    2 * theorem1_rounds(n, epsilon)
}

/// Lemma 1 (iterated): upper bound on the expected number of excess
/// personae after `i` rounds of Algorithm 1 with `n` initial personae.
pub fn lemma1_expected_excess(n: u64, i: u32) -> f64 {
    lemma1_f_iter((n.saturating_sub(1)) as f64, i)
}

/// Theorem 2: round count `R = ⌈log log n⌉ + ⌈log_{4/3}(8/ε)⌉` of
/// Algorithm 2 (also its individual step complexity).
pub fn theorem2_rounds(n: u64, epsilon: Epsilon) -> u64 {
    (ceil_log_log(n) + ceil_log_4_3(8.0 * epsilon.inverse()).max(1)) as u64
}

/// Lemmas 3–4: upper bound on the expected excess personae after `i`
/// rounds of Algorithm 2.
///
/// For `i ≤ ⌈log log n⌉` this is `x_i` from equation (2); beyond that it
/// decays geometrically as `8·(3/4)^{i-⌈log log n⌉}` (capped by the
/// phase-1 value for small `n`).
pub fn sifting_expected_excess(n: u64, i: u32) -> f64 {
    let aggressive = ceil_log_log(n);
    if i <= aggressive {
        sifting_x(n, i)
    } else {
        let at_switch = sifting_x(n, aggressive).min(8.0);
        at_switch * 0.75f64.powi((i - aggressive) as i32)
    }
}

/// Theorem 3: worst-case individual step bound of Algorithm 3 (loop
/// iterations × 2 + combining stage), parameterized the way
/// [`EmbeddedConciliator`](crate::EmbeddedConciliator) is built
/// (`ε = 1/4` inner sifter, 7-operation binary adopt-commit).
pub fn theorem3_individual_steps(n: u64) -> u64 {
    let inner = theorem2_rounds(n, Epsilon::QUARTER);
    2 * (inner + 1) + 1 + 7 + 1
}

/// Theorem 3: bound on the expected total steps of Algorithm 3.
///
/// The main loop performs an expected `≤ 4n` iterations before some
/// process writes `proposal` (each iteration flips a `1/(4n)` coin),
/// after which every process completes at most 2 further iterations
/// (the one in flight plus one that reads the proposal); at ≤ 2
/// operations per iteration that is `≤ 2(4n + 2n)` operations. The
/// combining stage adds ≤ 9 per process (output write + 7-operation
/// binary adopt-commit + final read): `21n` in total.
pub fn theorem3_expected_total_steps(n: u64) -> f64 {
    21.0 * n as f64
}

/// Expected number of conciliator+adopt-commit phases of a consensus
/// stack whose conciliator has agreement probability `delta`: a
/// geometric distribution with success probability `delta`, so `1/delta`
/// in expectation (paper §1.2).
pub fn expected_consensus_phases(delta: f64) -> f64 {
    assert!(delta > 0.0 && delta <= 1.0, "delta must be in (0, 1]");
    1.0 / delta
}

/// §2's duplicate-priority analysis: with priorities drawn from
/// `1..=range`, `R` rounds, and `n` personae, the probability that any
/// two personae ever share a priority is at most
/// `R · n²/2 · (1/range)`.
pub fn duplicate_priority_probability(n: u64, rounds: u64, range: u64) -> f64 {
    let pairs = (n as f64) * (n as f64) / 2.0;
    (rounds as f64 * pairs / range as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_rounds_grow_very_slowly() {
        let eps = Epsilon::HALF;
        assert_eq!(theorem1_rounds(2, eps), 3);
        assert_eq!(theorem1_rounds(1 << 16, eps), 6);
        assert_eq!(theorem1_rounds(1 << 20, eps), 7);
        assert_eq!(theorem1_steps(1 << 16, eps), 12);
    }

    #[test]
    fn theorem1_rounds_grow_with_inverse_epsilon() {
        let n = 1 << 10;
        let r_half = theorem1_rounds(n, Epsilon::HALF);
        let r_64 = theorem1_rounds(n, Epsilon::new(1.0 / 64.0).unwrap());
        assert_eq!(r_64 - r_half, 5, "log(64) - log(2) = 5 extra rounds");
    }

    #[test]
    fn lemma1_excess_after_r_rounds_is_tiny() {
        let n = 1u64 << 16;
        let r = theorem1_rounds(n, Epsilon::HALF) as u32;
        assert!(lemma1_expected_excess(n, r) <= 0.25 + 1e-9);
    }

    #[test]
    fn theorem2_rounds_values() {
        assert_eq!(theorem2_rounds(1 << 16, Epsilon::HALF), 14);
        assert_eq!(theorem2_rounds(1 << 16, Epsilon::QUARTER), 17);
    }

    #[test]
    fn sifting_excess_is_continuous_at_the_switch() {
        let n = 1u64 << 16;
        let a = ceil_log_log(n);
        let before = sifting_expected_excess(n, a);
        let after = sifting_expected_excess(n, a + 1);
        assert!(after <= before, "decay must continue: {before} -> {after}");
        assert!(before < 8.0 + 1e-9, "x at switch must be < 8");
    }

    #[test]
    fn sifting_excess_tail_reaches_epsilon() {
        // Theorem 2's calculation: after R rounds expected excess <= eps.
        let n = 1u64 << 16;
        let eps = 0.5;
        let r = theorem2_rounds(n, Epsilon::HALF) as u32;
        assert!(sifting_expected_excess(n, r) <= eps + 1e-9);
    }

    #[test]
    fn theorem3_bounds() {
        assert_eq!(
            theorem3_individual_steps(1 << 16),
            2 * 18 + 9,
            "matches EmbeddedConciliator::steps_bound"
        );
        assert_eq!(theorem3_expected_total_steps(100), 2100.0);
    }

    #[test]
    fn consensus_phase_expectation() {
        assert_eq!(expected_consensus_phases(0.5), 2.0);
        assert_eq!(expected_consensus_phases(0.125), 8.0);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1]")]
    fn zero_delta_panics() {
        expected_consensus_phases(0.0);
    }

    #[test]
    fn duplicate_probability_matches_parameters() {
        // With the paper's range ⌈R n²/ε⌉ the bound is ε/2.
        let n = 100u64;
        let rounds = 7u64;
        let eps = 0.25;
        let range = (rounds as f64 * (n * n) as f64 / eps).ceil() as u64;
        let p = duplicate_priority_probability(n, rounds, range);
        assert!(p <= eps / 2.0 + 1e-9, "{p} > eps/2");
        assert_eq!(duplicate_priority_probability(1000, 100, 1), 1.0);
    }
}

//! The conciliator abstraction.
//!
//! A conciliator (paper §1.2) keeps consensus's termination and validity
//! but weakens agreement to *probabilistic agreement*: there is a fixed
//! `δ > 0` such that, for any adversary strategy, all return values are
//! equal with probability at least `δ`. Conciliators create agreement
//! but cannot detect it; adopt-commit objects (in `sift-adopt-commit`)
//! detect it but cannot create it; alternating the two yields consensus
//! (`sift-consensus`).

use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{Process, ProcessId};

use crate::persona::Persona;

/// A family of conciliator participant state machines over one shared
/// instance.
///
/// Implementations hold the shared-object ids (allocated from a
/// [`LayoutBuilder`](sift_sim::LayoutBuilder)) and mint one single-use
/// participant per process. All participants of `sift-core` store
/// [`Persona`] values in shared memory and return the persona they
/// settled on; the caller extracts [`Persona::input`].
pub trait Conciliator {
    /// The participant state machine type.
    type Participant: Process<Value = Persona, Output = Persona>;

    /// Creates the participant for process `pid` with input `input`.
    ///
    /// All coin flips the participant will ever need are drawn from
    /// `rng` *now* (the persona technique), except for protocols that
    /// inherently flip per-step coins (Chor–Israeli–Li), which keep the
    /// generator.
    fn participant(
        &self,
        pid: ProcessId,
        input: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> Self::Participant;

    /// Worst-case number of shared-memory operations per participant,
    /// or `None` if only an expected bound exists (CIL-style loops).
    fn steps_bound(&self) -> Option<u64>;

    /// The agreement probability `δ` guaranteed by the construction
    /// against any oblivious adversary.
    fn agreement_probability(&self) -> f64;
}

/// Checks conciliator validity over a (possibly partial) execution:
/// every decided persona must carry some process's input.
///
/// `inputs[i]` is the input of process `i`; `outputs[i]` its returned
/// persona, or `None` if it crashed or was starved. This is the hook
/// the model checker's visitors use
/// (see [`check_dpor`](sift_sim::mc::check_dpor)).
///
/// # Errors
///
/// Returns a description of the first invalid output.
pub fn try_check_validity(inputs: &[u64], outputs: &[Option<Persona>]) -> Result<(), String> {
    for (pid, persona) in outputs.iter().enumerate() {
        if let Some(persona) = persona {
            if !inputs.contains(&persona.input()) {
                return Err(format!(
                    "validity violated: process {pid} returned input {} \
                     which nobody proposed (inputs {inputs:?})",
                    persona.input()
                ));
            }
        }
    }
    Ok(())
}

/// Round-by-round persona history, for survivor-decay experiments
/// (E1, E4, E5).
///
/// Participants of the round-structured conciliators record which
/// persona they held after each round; aggregating over processes gives
/// the number of distinct surviving personae per round — the paper's
/// progress measure `Y_i`.
pub trait RoundHistory {
    /// `history()[i]` is the origin of the persona held after round
    /// `i+1` (i.e. one entry per completed round).
    fn history(&self) -> &[ProcessId];
}

/// Counts distinct personae held after each round, across participants.
///
/// Returns one count per round; participants that did not reach a round
/// (crashed/starved) simply do not contribute to it. The excess count of
/// the paper is `count - 1`.
///
/// # Examples
///
/// ```
/// use sift_core::conciliator::distinct_per_round;
/// use sift_sim::ProcessId;
/// let histories: Vec<Vec<ProcessId>> = vec![
///     vec![ProcessId(0), ProcessId(0)],
///     vec![ProcessId(1), ProcessId(0)],
/// ];
/// assert_eq!(distinct_per_round(histories.iter().map(|h| h.as_slice())), vec![2, 1]);
/// ```
pub fn distinct_per_round<'a>(histories: impl Iterator<Item = &'a [ProcessId]>) -> Vec<usize> {
    use std::collections::HashSet;
    let mut per_round: Vec<HashSet<ProcessId>> = Vec::new();
    for history in histories {
        for (round, &origin) in history.iter().enumerate() {
            if per_round.len() <= round {
                per_round.resize_with(round + 1, HashSet::new);
            }
            per_round[round].insert(origin);
        }
    }
    per_round.into_iter().map(|s| s.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_counts_shrink_with_adoption() {
        let h0 = [ProcessId(0), ProcessId(2), ProcessId(2)];
        let h1 = [ProcessId(1), ProcessId(2), ProcessId(2)];
        let h2 = [ProcessId(2), ProcessId(1), ProcessId(2)];
        let counts = distinct_per_round([&h0[..], &h1[..], &h2[..]].into_iter());
        assert_eq!(counts, vec![3, 2, 1]);
    }

    #[test]
    fn ragged_histories_are_tolerated() {
        let h0 = [ProcessId(0)];
        let h1 = [ProcessId(1), ProcessId(1)];
        let counts = distinct_per_round([&h0[..], &h1[..]].into_iter());
        assert_eq!(counts, vec![2, 1]);
    }

    #[test]
    fn empty_input_is_empty() {
        let counts = distinct_per_round(std::iter::empty());
        assert!(counts.is_empty());
    }
}

//! The Chor–Israeli–Li conciliator (baseline, and the outer shell of
//! Algorithm 3).
//!
//! A single `proposal` register, initially ⊥. Each step a process reads
//! `proposal` and returns its value if non-⊥; otherwise with probability
//! `1/(4n)` it writes its own persona and returns it. Some process
//! writes after `4n` attempts in expectation (so expected *total* work
//! is `O(n)`), and the first written value is overwritten before
//! everyone reads it with probability at most `(n-1)/4n < 1/4`, giving
//! agreement probability greater than `3/4` (paper §4).
//!
//! The weakness the paper improves on: a process running *alone* (the
//! block-sequential adversary) needs `Θ(n)` expected steps before its
//! own coin fires — CIL has no useful worst-case individual bound.

use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{LayoutBuilder, Op, OpResult, Process, ProcessId, RegisterId, Step};

use crate::conciliator::Conciliator;
use crate::persona::{Persona, PersonaSpec};

/// Shared state of a CIL conciliator instance: one `proposal` register.
///
/// # Examples
///
/// ```
/// use sift_core::{CilConciliator, Conciliator};
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
///
/// let n = 16;
/// let mut b = LayoutBuilder::new();
/// let c = CilConciliator::allocate(&mut b, n);
/// let layout = b.build();
/// let split = SeedSplitter::new(21);
/// let procs: Vec<_> = (0..n)
///     .map(|i| {
///         let mut rng = split.stream("process", i as u64);
///         c.participant(ProcessId(i), i as u64, &mut rng)
///     })
///     .collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
/// assert!(report.all_decided());
/// ```
#[derive(Debug, Clone)]
pub struct CilConciliator {
    proposal: RegisterId,
    n: usize,
}

impl CilConciliator {
    /// Allocates an instance for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate(builder: &mut LayoutBuilder, n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        Self {
            proposal: builder.register(),
            n,
        }
    }

    /// The per-attempt write probability `1/(4n)`.
    pub fn write_probability(&self) -> f64 {
        1.0 / (4.0 * self.n as f64)
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.n
    }
}

impl Conciliator for CilConciliator {
    type Participant = CilParticipant;

    fn participant(
        &self,
        pid: ProcessId,
        input: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> CilParticipant {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        // CIL flips a coin per attempt, so the participant keeps its own
        // generator (still independent of the oblivious schedule).
        let mut own = Xoshiro256StarStar::seed_from_u64(rng.next_u64());
        let persona = Persona::generate(pid, input, &PersonaSpec::default(), &mut own);
        CilParticipant {
            shared: self.clone(),
            persona,
            rng: own,
            phase: Phase::Read,
            attempts: 0,
        }
    }

    fn steps_bound(&self) -> Option<u64> {
        None // unbounded worst case; expected O(n) attempts solo
    }

    fn agreement_probability(&self) -> f64 {
        0.75
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Read,
    AwaitRead,
    AwaitWrite,
    Finished,
}

/// Single-use participant of [`CilConciliator`].
#[derive(Debug, Clone)]
pub struct CilParticipant {
    shared: CilConciliator,
    persona: Persona,
    rng: Xoshiro256StarStar,
    phase: Phase,
    attempts: u64,
}

impl CilParticipant {
    /// Number of read attempts made so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }
}

impl Process for CilParticipant {
    type Value = Persona;
    type Output = Persona;

    fn step(&mut self, prev: Option<OpResult<Persona>>) -> Step<Persona, Persona> {
        match self.phase {
            Phase::Read => {
                self.phase = Phase::AwaitRead;
                self.attempts += 1;
                Step::Issue(Op::RegisterRead(self.shared.proposal))
            }
            Phase::AwaitRead => {
                match prev.expect("resumed with proposal value").expect_register() {
                    Some(seen) => {
                        self.phase = Phase::Finished;
                        Step::Done(seen)
                    }
                    None => {
                        if self.rng.bernoulli(self.shared.write_probability()) {
                            self.phase = Phase::AwaitWrite;
                            Step::Issue(Op::RegisterWrite(
                                self.shared.proposal,
                                self.persona.clone(),
                            ))
                        } else {
                            self.phase = Phase::Read;
                            self.step(None)
                        }
                    }
                }
            }
            Phase::AwaitWrite => {
                self.phase = Phase::Finished;
                Step::Done(self.persona.clone())
            }
            Phase::Finished => panic!("participant stepped after completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{BlockSequential, RandomInterleave, RoundRobin, Schedule};
    use sift_sim::Engine;

    fn run(n: usize, seed: u64, schedule: impl Schedule) -> sift_sim::RunReport<CilParticipant> {
        let mut b = LayoutBuilder::new();
        let c = CilConciliator::allocate(&mut b, n);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        Engine::new(&layout, procs).run(schedule)
    }

    #[test]
    fn terminates_with_valid_outputs() {
        for seed in 0..20 {
            let report = run(8, seed, RandomInterleave::new(8, seed + 3));
            for p in report.unwrap_outputs() {
                assert!(p.input() < 8);
            }
        }
    }

    #[test]
    fn agreement_rate_meets_three_quarters_bound() {
        let trials = 300;
        let mut disagreements = 0;
        for seed in 0..trials {
            let report = run(8, seed, RandomInterleave::new(8, seed + 17));
            if !report.outputs_agree() {
                disagreements += 1;
            }
        }
        assert!(
            (disagreements as f64) < trials as f64 * 0.25,
            "disagreement rate {disagreements}/{trials} exceeds 1/4"
        );
    }

    #[test]
    fn total_work_is_linear_on_average() {
        // Expected total ops ~ 8n (each attempt is <= 2 ops, 4n expected
        // attempts); allow generous slack.
        let n = 64;
        let trials = 30;
        let mut total = 0u64;
        for seed in 0..trials {
            let report = run(n, seed, RoundRobin::new(n));
            total += report.metrics.total_steps;
        }
        let mean = total as f64 / trials as f64;
        assert!(
            mean < 16.0 * n as f64,
            "mean total steps {mean} not O(n) for n={n}"
        );
    }

    #[test]
    fn solo_runner_needs_linear_steps() {
        // Under the block adversary the first process must fire its own
        // 1/(4n) coin: expected ~8n steps. This is the weakness that
        // Algorithm 3 fixes.
        let n = 64;
        let trials = 30;
        let mut first_steps = 0u64;
        for seed in 0..trials {
            let report = run(n, seed, BlockSequential::in_order(n));
            first_steps += report.metrics.per_process_steps[0];
        }
        let mean = first_steps as f64 / trials as f64;
        assert!(
            mean > n as f64,
            "solo CIL runner should need Ω(n) steps, got {mean}"
        );
    }

    #[test]
    fn write_probability_is_quarter_inverse_n() {
        let mut b = LayoutBuilder::new();
        let c = CilConciliator::allocate(&mut b, 10);
        assert!((c.write_probability() - 0.025).abs() < 1e-12);
        assert_eq!(c.steps_bound(), None);
        assert_eq!(c.agreement_probability(), 0.75);
    }
}

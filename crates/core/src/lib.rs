//! # sift-core — the paper's conciliators
//!
//! Implementation of the algorithms in Aspnes, *"Faster Randomized
//! Consensus With an Oblivious Adversary"* (PODC 2012):
//!
//! * [`SnapshotConciliator`] — **Algorithm 1**: priority-based
//!   conciliator in the unit-cost snapshot model; agreement probability
//!   `1-ε` in exactly `2R` steps, `R = log* n + ⌈log(1/ε)⌉ + 1`
//!   (Theorem 1).
//! * [`MaxConciliator`] — the max-register variant of Algorithm 1
//!   (footnote 1): same analysis, `O(1)`-cost operations.
//! * [`SiftingConciliator`] — **Algorithm 2**: sifting conciliator over
//!   multi-writer registers; agreement probability `1-ε` in
//!   `R = ⌈log log n⌉ + ⌈log_{4/3}(8/ε)⌉` steps (Theorem 2).
//! * [`CilConciliator`] — the classic Chor–Israeli–Li conciliator
//!   (baseline; `O(n)` expected total work, unbounded worst case).
//! * [`EscalatingCilConciliator`] — the doubling-probability CIL
//!   variant: `O(log n)` worst-case individual steps, the prior state
//!   of the art the paper improves on (its reference \[5\]).
//! * [`EmbeddedConciliator`] — **Algorithm 3**: Algorithm 2 embedded in
//!   a CIL shell with a combining stage; worst-case `O(log log n)`
//!   individual steps, expected `O(n)` total steps, agreement ≥ 1/8
//!   (Theorem 3). Can also embed the Algorithm 1 variant.
//!
//! All of them share the *persona* technique ([`persona::Persona`]):
//! every coin a value will ever need is pre-flipped by its originating
//! process and travels with the value, which is sound precisely because
//! the adversary is oblivious.
//!
//! ## Quick start
//!
//! ```
//! use sift_core::{Conciliator, Epsilon, SiftingConciliator};
//! use sift_sim::rng::SeedSplitter;
//! use sift_sim::schedule::RandomInterleave;
//! use sift_sim::{Engine, LayoutBuilder, ProcessId};
//!
//! let n = 100;
//! let mut builder = LayoutBuilder::new();
//! let conciliator = SiftingConciliator::allocate(&mut builder, n, Epsilon::HALF);
//! let layout = builder.build();
//!
//! // Schedule randomness and process randomness come from disjoint
//! // streams: the adversary is oblivious by construction.
//! let split = SeedSplitter::new(2024);
//! let schedule = RandomInterleave::new(n, split.seed("schedule", 0));
//! let participants: Vec<_> = (0..n)
//!     .map(|i| {
//!         let mut rng = split.stream("process", i as u64);
//!         conciliator.participant(ProcessId(i), (i % 5) as u64, &mut rng)
//!     })
//!     .collect();
//!
//! let report = Engine::new(&layout, participants).run(schedule);
//! let outputs = report.unwrap_outputs();
//! // Validity always holds; agreement holds with probability >= 1/2.
//! assert!(outputs.iter().all(|p| p.input() < 5));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod cil;
pub mod compact;
pub mod conciliator;
pub mod embedded;
pub mod escalating;
pub mod math;
pub mod max_conciliator;
pub mod params;
pub mod persona;
pub mod sifting;
pub mod snapshot_conciliator;

pub use cil::{CilConciliator, CilParticipant};
pub use compact::{CompactSiftingConciliator, CompactSiftingParticipant, PackedPersona};
pub use conciliator::{distinct_per_round, try_check_validity, Conciliator, RoundHistory};
pub use embedded::{EmbeddedConciliator, EmbeddedParticipant};
pub use escalating::{EscalatingCilConciliator, EscalatingCilParticipant};
pub use max_conciliator::{MaxConciliator, MaxParticipant};
pub use params::{Epsilon, InvalidEpsilon};
pub use persona::{Persona, PersonaSpec};
#[cfg(feature = "mutants")]
pub use sifting::SiftingMutation;
pub use sifting::{SiftingConciliator, SiftingParticipant};
pub use snapshot_conciliator::{SnapshotConciliator, SnapshotParticipant};

//! The max-register variant of Algorithm 1 (paper footnote 1).
//!
//! Algorithm 1 uses its snapshots only to find the maximum-priority
//! persona, so a max register per round suffices: write your persona
//! keyed by its round priority, read the maximum back, adopt it. The
//! analysis is unchanged — the sequence of values readable from the max
//! register forms the same nested-view structure — and both operations
//! are `O(1)`, which lets the simulator scale this variant to millions
//! of processes (experiment E15) where full snapshot scans would cost
//! `Θ(n)` local work each.

use std::sync::Arc;

use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{LayoutBuilder, MaxRegisterId, Op, OpResult, Process, ProcessId, Step};

use crate::conciliator::{Conciliator, RoundHistory};
use crate::math::{ceil_log2, log_star};
use crate::params::Epsilon;
use crate::persona::{Persona, PersonaSpec};

/// Shared state of the max-register Algorithm 1 variant.
///
/// # Examples
///
/// ```
/// use sift_core::{Conciliator, Epsilon, MaxConciliator};
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
///
/// let n = 1000;
/// let mut b = LayoutBuilder::new();
/// let c = MaxConciliator::allocate(&mut b, n, Epsilon::HALF);
/// let layout = b.build();
/// let split = SeedSplitter::new(3);
/// let procs: Vec<_> = (0..n)
///     .map(|i| {
///         let mut rng = split.stream("process", i as u64);
///         c.participant(ProcessId(i), i as u64, &mut rng)
///     })
///     .collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
/// assert!(report.all_decided());
/// ```
#[derive(Debug, Clone)]
pub struct MaxConciliator {
    registers: Arc<Vec<MaxRegisterId>>,
    n: usize,
    rounds: usize,
    priority_range: u64,
    epsilon: Epsilon,
}

impl MaxConciliator {
    /// Allocates an instance with the parameters of Theorem 1.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate(builder: &mut LayoutBuilder, n: usize, epsilon: Epsilon) -> Self {
        assert!(n > 0, "need at least one process");
        let rounds = (log_star(n as u64) + ceil_log2(epsilon.inverse()) + 1) as usize;
        let priority_range =
            (rounds as f64 * (n as f64) * (n as f64) / epsilon.get()).ceil() as u64;
        Self {
            registers: Arc::new(builder.max_registers(rounds)),
            n,
            rounds,
            priority_range,
            epsilon,
        }
    }

    /// Number of rounds `R`.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The priority range `⌈R n²/ε⌉`.
    pub fn priority_range(&self) -> u64 {
        self.priority_range
    }

    fn spec(&self) -> PersonaSpec {
        PersonaSpec {
            priority_rounds: self.rounds,
            priority_range: self.priority_range,
            write_probs: Vec::new(),
        }
    }
}

impl Conciliator for MaxConciliator {
    type Participant = MaxParticipant;

    fn participant(
        &self,
        pid: ProcessId,
        input: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> MaxParticipant {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        MaxParticipant {
            shared: self.clone(),
            persona: Persona::generate(pid, input, &self.spec(), rng),
            round: 0,
            phase: Phase::Write,
            history: Vec::with_capacity(self.rounds),
        }
    }

    fn steps_bound(&self) -> Option<u64> {
        Some(2 * self.rounds as u64)
    }

    fn agreement_probability(&self) -> f64 {
        1.0 - self.epsilon.get()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Write,
    Read,
    Finished,
}

/// Single-use participant of [`MaxConciliator`]: exactly `2R` max-register
/// operations.
#[derive(Debug, Clone)]
pub struct MaxParticipant {
    shared: MaxConciliator,
    persona: Persona,
    round: usize,
    phase: Phase,
    history: Vec<ProcessId>,
}

impl MaxParticipant {
    /// The persona currently held.
    pub fn persona(&self) -> &Persona {
        &self.persona
    }

    /// The round about to be executed (0-based).
    pub fn round(&self) -> usize {
        self.round
    }
}

impl Process for MaxParticipant {
    type Value = Persona;
    type Output = Persona;

    fn step(&mut self, prev: Option<OpResult<Persona>>) -> Step<Persona, Persona> {
        match self.phase {
            Phase::Write => {
                self.phase = Phase::Read;
                let key = self.persona.priority(self.round);
                Step::Issue(Op::MaxWrite(
                    self.shared.registers[self.round],
                    key,
                    self.persona.clone(),
                ))
            }
            Phase::Read => match prev.expect("resumed with ack or max value") {
                OpResult::Ack => Step::Issue(Op::MaxRead(self.shared.registers[self.round])),
                OpResult::MaxValue(entry) => {
                    let (_, persona) =
                        entry.expect("own write precedes the read, so the register is non-empty");
                    self.persona = persona;
                    self.history.push(self.persona.origin());
                    self.round += 1;
                    if self.round == self.shared.rounds {
                        self.phase = Phase::Finished;
                        Step::Done(self.persona.clone())
                    } else {
                        self.phase = Phase::Write;
                        self.step(None)
                    }
                }
                other => panic!("unexpected result {other:?}"),
            },
            Phase::Finished => panic!("participant stepped after completion"),
        }
    }
}

impl RoundHistory for MaxParticipant {
    fn history(&self) -> &[ProcessId] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conciliator::distinct_per_round;
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{RandomInterleave, RoundRobin, Schedule};
    use sift_sim::Engine;

    fn run(n: usize, seed: u64, schedule: impl Schedule) -> sift_sim::RunReport<MaxParticipant> {
        let mut b = LayoutBuilder::new();
        let c = MaxConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        Engine::new(&layout, procs).run(schedule)
    }

    #[test]
    fn parameters_match_snapshot_variant() {
        let mut b = LayoutBuilder::new();
        let c = MaxConciliator::allocate(&mut b, 1 << 16, Epsilon::HALF);
        assert_eq!(c.rounds(), 6);
        assert_eq!(c.steps_bound(), Some(12));
    }

    #[test]
    fn validity_and_termination() {
        for seed in 0..20 {
            let report = run(7, seed, RandomInterleave::new(7, seed + 99));
            let outs = report.unwrap_outputs();
            assert!(outs.iter().all(|p| p.input() < 7));
        }
    }

    #[test]
    fn uses_exactly_2r_steps() {
        let report = run(5, 1, RoundRobin::new(5));
        let rounds = report.processes[0].shared.rounds as u64;
        for &steps in &report.metrics.per_process_steps {
            assert_eq!(steps, 2 * rounds);
        }
    }

    #[test]
    fn agreement_rate_meets_bound() {
        let trials = 200;
        let mut disagreements = 0;
        for seed in 0..trials {
            let report = run(8, seed, RandomInterleave::new(8, seed + 7777));
            if !report.outputs_agree() {
                disagreements += 1;
            }
        }
        assert!(disagreements * 2 < trials, "{disagreements}/{trials}");
    }

    #[test]
    fn survivors_shrink_like_snapshot_variant() {
        let report = run(32, 5, RoundRobin::new(32));
        let counts = distinct_per_round(report.processes.iter().map(|p| p.history()));
        assert!(counts[0] <= 32);
        assert!(
            *counts.last().unwrap() <= counts[0],
            "survivors must not grow: {counts:?}"
        );
        for w in counts.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn scales_to_many_processes() {
        // The whole point of the max-register variant: O(1) per op.
        let n = 10_000;
        let report = run(n, 3, RoundRobin::new(n));
        assert!(report.all_decided());
        let rounds = report.processes[0].shared.rounds as u64;
        assert_eq!(report.metrics.total_steps, 2 * rounds * n as u64);
    }
}

//! The small zoo of logarithms and recurrences used by the paper.
//!
//! Everything here is pure arithmetic shared between the algorithms
//! (round counts, write probabilities) and the analysis/bench code
//! (predicted columns for the experiment tables).

/// Iterated logarithm `log* n` (base 2): the number of times `log2` must
/// be applied before the result is ≤ 1 (paper §1.3).
///
/// # Examples
///
/// ```
/// use sift_core::math::log_star;
/// assert_eq!(log_star(1), 0);
/// assert_eq!(log_star(2), 1);
/// assert_eq!(log_star(4), 2);
/// assert_eq!(log_star(16), 3);
/// assert_eq!(log_star(65536), 4);
/// assert_eq!(log_star(u64::MAX), 5);
/// ```
pub fn log_star(n: u64) -> u32 {
    let mut x = n as f64;
    let mut count = 0;
    while x > 1.0 {
        x = x.log2();
        count += 1;
    }
    count
}

/// `⌈log2 x⌉` for a positive real (used for `⌈log(1/ε)⌉`).
///
/// # Panics
///
/// Panics if `x` is not positive and finite.
pub fn ceil_log2(x: f64) -> u32 {
    assert!(
        x.is_finite() && x > 0.0,
        "ceil_log2 needs a positive finite input"
    );
    let l = x.log2();
    let c = l.ceil();
    // Guard against representation error for exact powers of two.
    if (c - l).abs() < 1e-12 {
        l.round().max(0.0) as u32
    } else {
        c.max(0.0) as u32
    }
}

/// `⌈log log n⌉` (base 2), with `n ≤ 2` giving 0 — the number of
/// aggressive sifting rounds in Algorithm 2.
///
/// # Examples
///
/// ```
/// use sift_core::math::ceil_log_log;
/// assert_eq!(ceil_log_log(2), 0);
/// assert_eq!(ceil_log_log(3), 1);
/// assert_eq!(ceil_log_log(4), 1);
/// assert_eq!(ceil_log_log(5), 2);
/// assert_eq!(ceil_log_log(16), 2);
/// assert_eq!(ceil_log_log(65536), 4);
/// ```
pub fn ceil_log_log(n: u64) -> u32 {
    if n <= 2 {
        return 0;
    }
    let ll = (n as f64).log2().log2();
    let c = ll.ceil();
    if (c - ll).abs() < 1e-12 {
        ll.round() as u32
    } else {
        c as u32
    }
}

/// `⌈log_{4/3} x⌉`, the number of tail sifting rounds needed to shrink
/// the expected excess by a factor of `x` (Theorem 2).
///
/// # Panics
///
/// Panics if `x` is not positive and finite.
pub fn ceil_log_4_3(x: f64) -> u32 {
    assert!(
        x.is_finite() && x > 0.0,
        "ceil_log_4_3 needs a positive finite input"
    );
    if x <= 1.0 {
        return 0;
    }
    let l = x.ln() / (4.0f64 / 3.0).ln();
    let c = l.ceil();
    if (c - l).abs() < 1e-9 {
        l.round() as u32
    } else {
        c as u32
    }
}

/// The contraction map of Lemma 1: `f(x) = min(ln(x+1), x/2)`.
pub fn lemma1_f(x: f64) -> f64 {
    ((x + 1.0).ln()).min(x / 2.0)
}

/// `i`-fold composition `f^{(i)}(x)` of [`lemma1_f`] (Theorem 1's
/// predicted expected excess after `i` rounds, starting from `x`).
pub fn lemma1_f_iter(x: f64, i: u32) -> f64 {
    let mut v = x;
    for _ in 0..i {
        v = lemma1_f(v);
    }
    v
}

/// The sifting recurrence solution (paper equation (2)):
/// `x_i = 2^{2 - 2^{1-i}} · (n-1)^{2^{-i}}`, the predicted expected
/// excess after `i` aggressive rounds.
///
/// `x_0 = n - 1` by definition; `i = 0` returns exactly that.
pub fn sifting_x(n: u64, i: u32) -> f64 {
    let x0 = (n.saturating_sub(1)) as f64;
    if i == 0 {
        return x0;
    }
    let e = 2f64.powi(-(i as i32));
    2f64.powf(2.0 - 2.0 * e) * x0.powf(e)
}

/// The tuned write probability `p_i = 1/√(x_{i-1})`, in closed form
/// `p_i = 2^{2^{1-i} - 1} · (n-1)^{-2^{-i}}` for round `i ≥ 1`, clamped
/// to `(0, 1]`.
///
/// Note: the paper's equation (3) prints the exponent of 2 as
/// `1 - 2^{1-i}`, which is inconsistent with its own recurrence
/// `p_{i+1} = 1/√(x_i)` and equation (2) (as `i → ∞` it would give
/// `p_i → 2` rather than `→ 1/2`). We implement the derivation-correct
/// form; experiment E4 verifies that the measured survivor decay then
/// matches Lemma 3's `x_i` exactly, and exceeds it with the printed
/// exponent.
///
/// # Panics
///
/// Panics if `i == 0` (rounds are 1-based in the paper).
pub fn sifting_p(n: u64, i: u32) -> f64 {
    assert!(i >= 1, "write probabilities are defined for rounds i >= 1");
    let x0 = (n.saturating_sub(1)) as f64;
    if x0 <= 1.0 {
        return 1.0;
    }
    let e = 2f64.powi(-(i as i32));
    let p = 2f64.powf(2.0 * e - 1.0) * x0.powf(-e);
    p.clamp(f64::MIN_POSITIVE, 1.0)
}

/// Harmonic number `H_k = Σ_{j=1..k} 1/j` (used in Lemma 1's analysis
/// checks).
pub fn harmonic(k: u64) -> f64 {
    (1..=k).map(|j| 1.0 / j as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(0), 0);
        assert_eq!(log_star(3), 2);
        assert_eq!(log_star(5), 3);
        assert_eq!(log_star(17), 4);
        assert_eq!(log_star(1 << 20), 5);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1.0), 0);
        assert_eq!(ceil_log2(2.0), 1);
        assert_eq!(ceil_log2(3.0), 2);
        assert_eq!(ceil_log2(1024.0), 10);
        assert_eq!(ceil_log2(0.5), 0, "negative logs clamp to zero");
        // 1/epsilon for epsilon = 1/64.
        assert_eq!(ceil_log2(64.0), 6);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn ceil_log2_rejects_zero() {
        ceil_log2(0.0);
    }

    #[test]
    fn ceil_log_4_3_values() {
        assert_eq!(ceil_log_4_3(1.0), 0);
        // log_{4/3}(16) = ln16/ln(4/3) ≈ 9.64.
        assert_eq!(ceil_log_4_3(16.0), 10);
        // 8/epsilon with epsilon = 1/2 => log_{4/3}(16) again.
        assert_eq!(ceil_log_4_3(8.0 / 0.5), 10);
    }

    #[test]
    fn lemma1_f_is_min_of_the_two_bounds() {
        // Large x: ln wins. Small x: x/2 wins.
        assert!((lemma1_f(1000.0) - 1001f64.ln()).abs() < 1e-12);
        assert!((lemma1_f(0.5) - 0.25).abs() < 1e-12);
        // f is increasing.
        let mut last = 0.0;
        for i in 1..100 {
            let v = lemma1_f(i as f64 * 0.5);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn lemma1_iteration_reaches_small_values_in_log_star_rounds() {
        // Theorem 1: f^{(log* n)}(n) <= 1.
        for &n in &[16u64, 256, 65536, 1 << 40] {
            let i = log_star(n);
            assert!(
                lemma1_f_iter(n as f64, i) <= 1.0 + 1e-9,
                "n = {n}: f^({i})(n) = {}",
                lemma1_f_iter(n as f64, i)
            );
        }
    }

    #[test]
    fn lemma1_halving_tail() {
        // Each extra application at least halves: f(x) <= x/2.
        let x = lemma1_f_iter(1000.0, 3);
        assert!(lemma1_f(x) <= x / 2.0 + 1e-12);
    }

    #[test]
    fn sifting_recurrence_solution_matches_iteration() {
        // x_{i+1} = 2 * sqrt(x_i) must match the closed form (2).
        for &n in &[10u64, 100, 4096] {
            let mut x = (n - 1) as f64;
            for i in 1..=6u32 {
                x = 2.0 * x.sqrt();
                let closed = sifting_x(n, i);
                assert!(
                    (x - closed).abs() / closed < 1e-9,
                    "n={n} i={i}: iterated {x} vs closed {closed}"
                );
            }
        }
    }

    #[test]
    fn sifting_x_after_loglog_rounds_is_below_8() {
        // The paper shows x_{⌈log log n⌉} < 8.
        for &n in &[4u64, 16, 256, 65536, 1 << 20, 1 << 40] {
            let i = ceil_log_log(n);
            let x = sifting_x(n, i);
            assert!(x < 8.0 + 1e-9, "n={n}: x_{i} = {x}");
        }
    }

    #[test]
    fn sifting_p_first_round_is_inverse_sqrt() {
        // p_1 = 1/sqrt(n-1).
        for &n in &[5u64, 17, 1025] {
            let p = sifting_p(n, 1);
            let expect = 1.0 / ((n - 1) as f64).sqrt();
            assert!((p - expect).abs() < 1e-12, "n={n}: {p} vs {expect}");
        }
    }

    #[test]
    fn sifting_p_is_increasing_toward_one_half() {
        let n = 1 << 16;
        let mut last = 0.0;
        for i in 1..=ceil_log_log(n) {
            let p = sifting_p(n, i);
            assert!(p > last, "p_i should increase");
            assert!(p <= 1.0);
            last = p;
        }
        // After the aggressive phase p_i would be near 1/2; the algorithm
        // switches to exactly 1/2.
        assert!(last < 1.0);
    }

    #[test]
    fn sifting_p_degenerate_n() {
        assert_eq!(sifting_p(1, 1), 1.0);
        assert_eq!(sifting_p(2, 1), 1.0);
    }

    #[test]
    fn harmonic_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // H_k <= ln k + 1.
        for k in [10u64, 100, 1000] {
            assert!(harmonic(k) <= (k as f64).ln() + 1.0);
        }
    }
}

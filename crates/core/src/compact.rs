//! Compact sifting: Algorithm 2 over word-sized registers.
//!
//! §3 of the paper remarks that the originating process id carried by a
//! persona "is not used by the algorithm and can be omitted in an
//! actual implementation", shrinking each register from
//! `O(log n + log m)` to `O(log log n + log m)` bits: what remains is
//! the input value plus one pre-flipped bit per round
//! (`R = O(log log n + log(1/ε))` of them) and the combining-stage
//! coin.
//!
//! [`CompactSiftingConciliator`] implements exactly that: personae are
//! packed into a single `u64` word ([`PackedPersona`]) — input code in
//! the low bits, one `chooseWrite` bit per round, one coin bit — and
//! the algorithm runs over `u64`-valued registers. Two processes with
//! the same input *and* the same coin flips become indistinguishable,
//! which only merges personae earlier (the analysis already counts such
//! merges pessimistically), so all guarantees carry over.

use std::sync::Arc;

use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{LayoutBuilder, Op, OpResult, Process, ProcessId, RegisterId, Step};

use crate::math::{ceil_log_4_3, ceil_log_log, sifting_p};
use crate::params::Epsilon;

/// A persona packed into one machine word: `[coin | chooseWrite bits |
/// input code]`.
///
/// # Examples
///
/// ```
/// use sift_core::compact::PackedPersona;
/// let p = PackedPersona::pack(5, &[true, false, true], false, 4);
/// assert_eq!(p.input(4), 5);
/// assert!(p.wants_write(0, 4));
/// assert!(!p.wants_write(1, 4));
/// assert!(p.wants_write(2, 4));
/// assert!(!p.coin(3, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedPersona(pub u64);

impl PackedPersona {
    /// Packs an input code (`< 2^input_bits`), per-round write choices,
    /// and a coin bit.
    ///
    /// # Panics
    ///
    /// Panics if the pieces do not fit in 64 bits or the input code is
    /// too large.
    pub fn pack(input: u64, choose_write: &[bool], coin: bool, input_bits: u32) -> Self {
        assert!(
            input_bits + (choose_write.len() as u32) < 64,
            "packed persona needs {} bits, only 64 available",
            input_bits as usize + choose_write.len() + 1
        );
        assert!(
            input_bits == 64 || input < (1u64 << input_bits),
            "input {input} does not fit in {input_bits} bits"
        );
        let mut word = input;
        for (i, &w) in choose_write.iter().enumerate() {
            word |= (w as u64) << (input_bits as usize + i);
        }
        word |= (coin as u64) << (input_bits as usize + choose_write.len());
        Self(word)
    }

    /// The input code.
    pub fn input(self, input_bits: u32) -> u64 {
        if input_bits == 64 {
            self.0
        } else {
            self.0 & ((1u64 << input_bits) - 1)
        }
    }

    /// The round-`round` write choice (0-based).
    pub fn wants_write(self, round: usize, input_bits: u32) -> bool {
        (self.0 >> (input_bits as usize + round)) & 1 == 1
    }

    /// The combining-stage coin bit (`rounds` = total round count).
    pub fn coin(self, rounds: usize, input_bits: u32) -> bool {
        (self.0 >> (input_bits as usize + rounds)) & 1 == 1
    }
}

/// Width accounting for §3's remark: bits per register with and without
/// the originating id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterWidth {
    /// Rounds `R` of the sifting conciliator.
    pub rounds: u32,
    /// Bits for the input code (`⌈log₂ m⌉`).
    pub input_bits: u32,
    /// Bits with the id included: `⌈log₂ n⌉ + input_bits + R + 1`.
    pub with_id_bits: u32,
    /// Bits of the compact encoding: `input_bits + R + 1` —
    /// `O(log log n + log m)`.
    pub compact_bits: u32,
}

/// Computes the register width of Algorithm 2 for `n` processes, `m`
/// input values, and failure budget `epsilon`.
pub fn register_width(n: u64, m: u64, epsilon: Epsilon) -> RegisterWidth {
    let rounds = ceil_log_log(n) + ceil_log_4_3(8.0 * epsilon.inverse()).max(1);
    let input_bits = 64 - m.saturating_sub(1).leading_zeros().min(63);
    let input_bits = if m <= 1 { 1 } else { input_bits };
    let id_bits = 64 - n.saturating_sub(1).leading_zeros().min(63);
    RegisterWidth {
        rounds,
        input_bits,
        with_id_bits: id_bits + input_bits + rounds + 1,
        compact_bits: input_bits + rounds + 1,
    }
}

/// Algorithm 2 over packed `u64` personae: the id-free implementation
/// of §3's remark.
///
/// # Examples
///
/// ```
/// use sift_core::compact::CompactSiftingConciliator;
/// use sift_core::Epsilon;
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
///
/// let n = 32;
/// let mut b = LayoutBuilder::new();
/// let c = CompactSiftingConciliator::allocate(&mut b, n, 8, Epsilon::HALF);
/// let layout = b.build();
/// let split = SeedSplitter::new(5);
/// let procs: Vec<_> = (0..n)
///     .map(|i| {
///         let mut rng = split.stream("process", i as u64);
///         c.participant(ProcessId(i), (i % 8) as u64, &mut rng)
///     })
///     .collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
/// let outputs = report.unwrap_outputs();
/// assert!(outputs.iter().all(|&v| v < 8), "validity");
/// ```
#[derive(Debug, Clone)]
pub struct CompactSiftingConciliator {
    registers: Arc<Vec<RegisterId>>,
    probs: Arc<Vec<f64>>,
    n: usize,
    m: u64,
    input_bits: u32,
    epsilon: Epsilon,
}

impl CompactSiftingConciliator {
    /// Allocates an instance for `n` processes and inputs in `0..m`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `m == 0`, or the packed persona would exceed
    /// 64 bits (extremely small ε).
    pub fn allocate(builder: &mut LayoutBuilder, n: usize, m: u64, epsilon: Epsilon) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(m > 0, "need at least one possible input");
        let width = register_width(n as u64, m, epsilon);
        assert!(
            width.compact_bits <= 64,
            "packed persona needs {} bits; use the Arc-based persona instead",
            width.compact_bits
        );
        let aggressive = ceil_log_log(n as u64);
        let probs: Vec<f64> = (1..=width.rounds)
            .map(|i| {
                if i <= aggressive {
                    sifting_p(n as u64, i)
                } else {
                    0.5
                }
            })
            .collect();
        let registers = builder.registers(probs.len());
        Self {
            registers: Arc::new(registers),
            probs: Arc::new(probs),
            n,
            m,
            input_bits: width.input_bits,
            epsilon,
        }
    }

    /// Number of rounds `R`.
    pub fn rounds(&self) -> usize {
        self.probs.len()
    }

    /// Bits actually stored per register.
    pub fn register_bits(&self) -> u32 {
        self.input_bits + self.rounds() as u32 + 1
    }

    /// The agreement probability `1 - ε`.
    pub fn agreement_probability(&self) -> f64 {
        1.0 - self.epsilon.get()
    }

    /// Creates the participant for `pid` with input `input`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` or `input` is out of range.
    pub fn participant(
        &self,
        pid: ProcessId,
        input: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> CompactSiftingParticipant {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        assert!(input < self.m, "input {input} out of range 0..{}", self.m);
        let choose_write: Vec<bool> = self.probs.iter().map(|&p| rng.bernoulli(p)).collect();
        let persona = PackedPersona::pack(input, &choose_write, rng.coin(), self.input_bits);
        CompactSiftingParticipant {
            shared: self.clone(),
            persona,
            round: 0,
            finished: false,
        }
    }
}

/// Single-use participant of [`CompactSiftingConciliator`]: exactly one
/// `u64` register operation per round.
#[derive(Debug, Clone)]
pub struct CompactSiftingParticipant {
    shared: CompactSiftingConciliator,
    persona: PackedPersona,
    round: usize,
    finished: bool,
}

impl Process for CompactSiftingParticipant {
    type Value = u64;
    type Output = u64;

    fn step(&mut self, prev: Option<OpResult<u64>>) -> Step<u64, u64> {
        if self.finished {
            panic!("participant stepped after completion");
        }
        if let Some(result) = prev {
            match result {
                OpResult::Ack => {}
                OpResult::RegisterValue(Some(seen)) => self.persona = PackedPersona(seen),
                OpResult::RegisterValue(None) => {}
                other => panic!("unexpected result {other:?}"),
            }
            self.round += 1;
        }
        if self.round == self.shared.rounds() {
            self.finished = true;
            return Step::Done(self.persona.input(self.shared.input_bits));
        }
        let reg = self.shared.registers[self.round];
        if self.persona.wants_write(self.round, self.shared.input_bits) {
            Step::Issue(Op::RegisterWrite(reg, self.persona.0))
        } else {
            Step::Issue(Op::RegisterRead(reg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{RandomInterleave, RoundRobin, Schedule};
    use sift_sim::Engine;

    #[test]
    fn packing_round_trips() {
        let bits = [true, false, false, true, true];
        let p = PackedPersona::pack(37, &bits, true, 6);
        assert_eq!(p.input(6), 37);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(p.wants_write(i, 6), b, "round {i}");
        }
        assert!(p.coin(5, 6));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_input_panics() {
        PackedPersona::pack(8, &[], false, 3);
    }

    #[test]
    #[should_panic(expected = "only 64 available")]
    fn oversized_word_panics() {
        PackedPersona::pack(0, &[false; 64], false, 1);
    }

    #[test]
    fn width_matches_the_papers_remark() {
        let w = register_width(1 << 16, 256, Epsilon::HALF);
        assert_eq!(w.rounds, 14);
        assert_eq!(w.input_bits, 8);
        // With id: 16 + 8 + 14 + 1; compact drops the 16 id bits.
        assert_eq!(w.with_id_bits, 39);
        assert_eq!(w.compact_bits, 23);
        // The saving grows with n while the compact width stays at
        // O(log log n + log m).
        let w_big = register_width(1 << 40, 256, Epsilon::HALF);
        assert_eq!(w_big.with_id_bits - w_big.compact_bits, 40);
        assert!(w_big.compact_bits <= 25);
    }

    fn run(
        n: usize,
        m: u64,
        seed: u64,
        schedule: impl Schedule,
    ) -> sift_sim::RunReport<CompactSiftingParticipant> {
        let mut b = LayoutBuilder::new();
        let c = CompactSiftingConciliator::allocate(&mut b, n, m, Epsilon::HALF);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64 % m, &mut rng)
            })
            .collect();
        Engine::new(&layout, procs).run(schedule)
    }

    #[test]
    fn validity_and_exact_step_counts() {
        for seed in 0..20 {
            let report = run(24, 8, seed, RandomInterleave::new(24, seed + 3));
            for &v in report.outputs.iter().flatten() {
                assert!(v < 8);
            }
            let rounds = report.processes[0].shared.rounds() as u64;
            for &steps in &report.metrics.per_process_steps {
                assert_eq!(steps, rounds);
            }
        }
    }

    #[test]
    fn agreement_rate_matches_arc_persona_version() {
        let trials = 200;
        let mut disagreements = 0;
        for seed in 0..trials {
            let report = run(16, 4, seed, RandomInterleave::new(16, seed + 900));
            let outs: Vec<u64> = report.unwrap_outputs();
            if !outs.windows(2).all(|w| w[0] == w[1]) {
                disagreements += 1;
            }
        }
        assert!(
            disagreements * 2 < trials,
            "disagreement {disagreements}/{trials} exceeds epsilon"
        );
    }

    #[test]
    fn register_bits_are_small() {
        let mut b = LayoutBuilder::new();
        let c = CompactSiftingConciliator::allocate(&mut b, 1 << 20, 2, Epsilon::HALF);
        assert!(c.register_bits() <= 20, "bits = {}", c.register_bits());
        assert!((c.agreement_probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_process_returns_own_input() {
        let report = run(1, 4, 0, RoundRobin::new(1));
        assert_eq!(report.outputs[0], Some(0));
    }
}

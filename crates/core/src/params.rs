//! Shared protocol parameters.

use std::fmt;

/// A failure-probability budget `ε ∈ (0, 1)`.
///
/// Both conciliators take an `ε` and guarantee agreement with
/// probability at least `1 - ε` (Theorems 1 and 2); their round counts
/// grow by `O(log(1/ε))`.
///
/// # Examples
///
/// ```
/// use sift_core::params::Epsilon;
/// let eps = Epsilon::new(0.25).unwrap();
/// assert_eq!(eps.get(), 0.25);
/// assert_eq!(Epsilon::HALF.get(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// `ε = 1/2`, the choice used by the paper's corollaries.
    pub const HALF: Epsilon = Epsilon(0.5);

    /// `ε = 1/4`, used by Algorithm 3's embedded sifter.
    pub const QUARTER: Epsilon = Epsilon(0.25);

    /// Validates `0 < value < 1`.
    pub fn new(value: f64) -> Result<Self, InvalidEpsilon> {
        if value.is_finite() && value > 0.0 && value < 1.0 {
            Ok(Self(value))
        } else {
            Err(InvalidEpsilon(value))
        }
    }

    /// The raw probability.
    pub fn get(self) -> f64 {
        self.0
    }

    /// `1/ε`.
    pub fn inverse(self) -> f64 {
        1.0 / self.0
    }
}

impl Default for Epsilon {
    fn default() -> Self {
        Self::HALF
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Epsilon {
    type Error = InvalidEpsilon;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

/// Error returned for an `ε` outside `(0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidEpsilon(f64);

impl fmt::Display for InvalidEpsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epsilon must be in (0, 1), got {}", self.0)
    }
}

impl std::error::Error for InvalidEpsilon {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_open_interval() {
        assert!(Epsilon::new(0.001).is_ok());
        assert!(Epsilon::new(0.999).is_ok());
    }

    #[test]
    fn rejects_boundary_and_garbage() {
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(1.0).is_err());
        assert!(Epsilon::new(-0.5).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
    }

    #[test]
    fn error_displays_value() {
        let err = Epsilon::new(2.0).unwrap_err();
        assert_eq!(err.to_string(), "epsilon must be in (0, 1), got 2");
    }

    #[test]
    fn conversions() {
        let eps: Epsilon = 0.125f64.try_into().unwrap();
        assert_eq!(eps.inverse(), 8.0);
        assert_eq!(Epsilon::default(), Epsilon::HALF);
        assert_eq!(Epsilon::QUARTER.get(), 0.25);
        assert_eq!(format!("{}", Epsilon::HALF), "0.5");
    }
}

//! The escalating (doubling) CIL conciliator — the `O(log n)` baseline
//! the paper improves on.
//!
//! The paper's introduction credits its reference \[5\] (Aspnes, *A
//! modular approach to shared-memory consensus*) with a CIL-derived
//! conciliator achieving `O(log n)` individual and `O(n)` total steps
//! under a weak adversary. The mechanism: as in Chor–Israeli–Li, a
//! process reads the `proposal` register and leaves with its value if
//! non-⊥; otherwise it writes its own persona with a probability that
//! **doubles on every attempt**, starting at `1/(4n)`. After
//! `log₂(4n)` failed attempts the probability reaches 1, so the
//! worst-case individual step complexity is `O(log n)` — the bar that
//! Algorithm 2's `O(log log n)` and Algorithm 1's `O(log* n)` lower.
//!
//! Agreement: the first value written is overwritten only by processes
//! whose coin fires in the window before they read it; doubling keeps
//! the total overwrite probability constant, preserving a constant
//! agreement probability (measured in E11/E12 alongside the others).

use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{LayoutBuilder, Op, OpResult, Process, ProcessId, RegisterId, Step};

use crate::conciliator::Conciliator;
use crate::persona::{Persona, PersonaSpec};

/// Shared state of an escalating-CIL instance: one `proposal` register.
///
/// # Examples
///
/// ```
/// use sift_core::{Conciliator, EscalatingCilConciliator};
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
///
/// let n = 16;
/// let mut b = LayoutBuilder::new();
/// let c = EscalatingCilConciliator::allocate(&mut b, n);
/// let layout = b.build();
/// let split = SeedSplitter::new(17);
/// let procs: Vec<_> = (0..n)
///     .map(|i| {
///         let mut rng = split.stream("process", i as u64);
///         c.participant(ProcessId(i), i as u64, &mut rng)
///     })
///     .collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
/// assert!(report.all_decided());
/// // Worst case O(log n): nobody exceeds the bound.
/// let bound = c.steps_bound().unwrap();
/// assert!(report.metrics.max_individual_steps() <= bound);
/// ```
#[derive(Debug, Clone)]
pub struct EscalatingCilConciliator {
    proposal: RegisterId,
    n: usize,
}

impl EscalatingCilConciliator {
    /// Allocates an instance for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate(builder: &mut LayoutBuilder, n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        Self {
            proposal: builder.register(),
            n,
        }
    }

    /// The write probability of attempt `k` (0-based):
    /// `min(1, 2^k/(4n))`.
    pub fn write_probability(&self, attempt: u32) -> f64 {
        let base = 1.0 / (4.0 * self.n as f64);
        (base * 2f64.powi(attempt as i32)).min(1.0)
    }

    /// Attempts until the probability saturates at 1: `⌈log₂ 4n⌉ + 1`.
    pub fn max_attempts(&self) -> u32 {
        (4 * self.n as u64).next_power_of_two().trailing_zeros() + 1
    }
}

impl Conciliator for EscalatingCilConciliator {
    type Participant = EscalatingCilParticipant;

    fn participant(
        &self,
        pid: ProcessId,
        input: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> EscalatingCilParticipant {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        let mut own = Xoshiro256StarStar::seed_from_u64(rng.next_u64());
        let persona = Persona::generate(pid, input, &PersonaSpec::default(), &mut own);
        EscalatingCilParticipant {
            shared: self.clone(),
            persona,
            rng: own,
            attempt: 0,
            phase: Phase::Read,
        }
    }

    fn steps_bound(&self) -> Option<u64> {
        // Each attempt costs a read, plus one final write.
        Some(self.max_attempts() as u64 + 1)
    }

    fn agreement_probability(&self) -> f64 {
        // The union-bound argument of plain CIL degrades with the
        // doubling window (later attempts overwrite more aggressively);
        // empirically the rate sits just under 1/2 at small n, so we
        // advertise a conservative 1/4.
        0.25
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Read,
    AwaitRead,
    AwaitWrite,
    Finished,
}

/// Single-use participant of [`EscalatingCilConciliator`]: at most
/// `⌈log₂ 4n⌉ + 2` operations.
#[derive(Debug, Clone)]
pub struct EscalatingCilParticipant {
    shared: EscalatingCilConciliator,
    persona: Persona,
    rng: Xoshiro256StarStar,
    attempt: u32,
    phase: Phase,
}

impl EscalatingCilParticipant {
    /// Attempts made so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

impl Process for EscalatingCilParticipant {
    type Value = Persona;
    type Output = Persona;

    fn step(&mut self, prev: Option<OpResult<Persona>>) -> Step<Persona, Persona> {
        match self.phase {
            Phase::Read => {
                self.phase = Phase::AwaitRead;
                Step::Issue(Op::RegisterRead(self.shared.proposal))
            }
            Phase::AwaitRead => {
                match prev.expect("resumed with proposal value").expect_register() {
                    Some(seen) => {
                        self.phase = Phase::Finished;
                        Step::Done(seen)
                    }
                    None => {
                        let p = self.shared.write_probability(self.attempt);
                        self.attempt += 1;
                        if self.rng.bernoulli(p) {
                            self.phase = Phase::AwaitWrite;
                            Step::Issue(Op::RegisterWrite(
                                self.shared.proposal,
                                self.persona.clone(),
                            ))
                        } else {
                            self.phase = Phase::Read;
                            self.step(None)
                        }
                    }
                }
            }
            Phase::AwaitWrite => {
                self.phase = Phase::Finished;
                Step::Done(self.persona.clone())
            }
            Phase::Finished => panic!("participant stepped after completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{BlockSequential, RandomInterleave, Schedule};
    use sift_sim::Engine;

    fn run(
        n: usize,
        seed: u64,
        schedule: impl Schedule,
    ) -> sift_sim::RunReport<EscalatingCilParticipant> {
        let mut b = LayoutBuilder::new();
        let c = EscalatingCilConciliator::allocate(&mut b, n);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        Engine::new(&layout, procs).run(schedule)
    }

    #[test]
    fn probability_doubles_and_saturates() {
        let mut b = LayoutBuilder::new();
        let c = EscalatingCilConciliator::allocate(&mut b, 16);
        assert!((c.write_probability(0) - 1.0 / 64.0).abs() < 1e-12);
        assert!((c.write_probability(1) - 1.0 / 32.0).abs() < 1e-12);
        assert_eq!(c.write_probability(6), 1.0);
        assert_eq!(c.write_probability(100), 1.0);
        assert_eq!(c.max_attempts(), 7);
        assert_eq!(c.steps_bound(), Some(8));
    }

    #[test]
    fn worst_case_is_logarithmic_even_solo() {
        // Under the block adversary the solo runner saturates its coin
        // after O(log n) attempts — unlike plain CIL's Θ(n).
        for n in [16usize, 256, 4096] {
            let mut b = LayoutBuilder::new();
            let c = EscalatingCilConciliator::allocate(&mut b, n);
            let bound = c.steps_bound().unwrap();
            for seed in 0..10 {
                let report = run(n, seed, BlockSequential::in_order(n));
                assert!(report.all_decided());
                assert!(
                    report.metrics.max_individual_steps() <= bound,
                    "n={n}: {} > {bound}",
                    report.metrics.max_individual_steps()
                );
            }
        }
    }

    #[test]
    fn validity_holds() {
        for seed in 0..20 {
            let report = run(12, seed, RandomInterleave::new(12, seed + 5));
            for p in report.unwrap_outputs() {
                assert!(p.input() < 12);
            }
        }
    }

    #[test]
    fn agreement_is_frequent() {
        let trials = 300;
        let mut agreements = 0;
        for seed in 0..trials {
            let report = run(16, seed, RandomInterleave::new(16, seed + 77));
            if report.outputs_agree() {
                agreements += 1;
            }
        }
        assert!(
            agreements * 4 > trials,
            "agreement {agreements}/{trials} below the advertised 1/4"
        );
    }
}

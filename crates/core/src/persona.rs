//! Personae: input values bundled with pre-flipped coins.
//!
//! Because the oblivious adversary cannot observe coin flips or process
//! states, each process can generate *all* the random bits its input
//! value will ever need up front; the bits then travel with the value as
//! other processes adopt it, so every copy of a value behaves identically
//! in each round (paper §1, "persona"). The number of surviving distinct
//! personae — not surviving processes — is the progress measure of both
//! conciliators.
//!
//! A [`Persona`] is cheap to clone (`Arc`-backed) and is the value type
//! stored in shared memory by every protocol in `sift-core`.

use std::sync::Arc;

use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::ProcessId;

#[derive(Debug)]
struct PersonaData {
    origin: ProcessId,
    input: u64,
    /// Shared-coin bit for Algorithm 3's combining stage.
    coin: bool,
    /// Per-round priorities for Algorithm 1 (empty when unused).
    priorities: Vec<u64>,
    /// Per-round write/read choices for Algorithm 2 (empty when unused).
    choose_write: Vec<bool>,
}

/// An input value together with its pre-flipped random bits.
///
/// Personae are identified by their *origin* (the process that generated
/// the bits): within one protocol instance, the origin determines the
/// input and every random bit, so equality and hashing use the origin
/// alone.
///
/// # Examples
///
/// ```
/// use sift_core::persona::{Persona, PersonaSpec};
/// use sift_sim::rng::Xoshiro256StarStar;
/// use sift_sim::ProcessId;
///
/// let spec = PersonaSpec {
///     priority_rounds: 3,
///     priority_range: 1_000,
///     write_probs: vec![0.5, 0.5],
/// };
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let p = Persona::generate(ProcessId(0), 42, &spec, &mut rng);
/// assert_eq!(p.input(), 42);
/// assert!(p.priority(2) >= 1 && p.priority(2) <= 1_000);
/// let _write_in_round_1: bool = p.wants_write(0);
/// ```
#[derive(Debug, Clone)]
pub struct Persona(Arc<PersonaData>);

/// How many random bits of each kind a persona needs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PersonaSpec {
    /// Number of per-round priorities to draw (Algorithm 1's `R`).
    pub priority_rounds: usize,
    /// Priorities are uniform in `1..=priority_range` (the paper's
    /// `⌈R n²/ε⌉`). Ignored when `priority_rounds == 0`.
    pub priority_range: u64,
    /// Per-round probabilities of choosing to write (Algorithm 2's
    /// `p_i`, index 0 = round 1).
    pub write_probs: Vec<f64>,
}

impl Persona {
    /// Generates a persona for `input` at `origin`, drawing all random
    /// bits from `rng` now.
    ///
    /// # Panics
    ///
    /// Panics if `spec.priority_rounds > 0` but `spec.priority_range == 0`.
    pub fn generate(
        origin: ProcessId,
        input: u64,
        spec: &PersonaSpec,
        rng: &mut Xoshiro256StarStar,
    ) -> Self {
        if spec.priority_rounds > 0 {
            assert!(spec.priority_range > 0, "priority range must be positive");
        }
        let priorities = (0..spec.priority_rounds)
            .map(|_| rng.range_u64_inclusive_from_one(spec.priority_range))
            .collect();
        let choose_write = spec.write_probs.iter().map(|&p| rng.bernoulli(p)).collect();
        Self(Arc::new(PersonaData {
            origin,
            input,
            coin: rng.coin(),
            priorities,
            choose_write,
        }))
    }

    /// A persona with no random bits (for tests and trivial protocols).
    pub fn bare(origin: ProcessId, input: u64) -> Self {
        Self(Arc::new(PersonaData {
            origin,
            input,
            coin: false,
            priorities: Vec::new(),
            choose_write: Vec::new(),
        }))
    }

    /// The process that generated this persona's bits.
    pub fn origin(&self) -> ProcessId {
        self.0.origin
    }

    /// The input value the persona carries.
    pub fn input(&self) -> u64 {
        self.0.input
    }

    /// The shared-coin bit used by Algorithm 3's combining stage.
    pub fn coin(&self) -> bool {
        self.0.coin
    }

    /// The priority for round `round` (0-based), for Algorithm 1.
    ///
    /// # Panics
    ///
    /// Panics if the persona was generated without enough priority
    /// rounds.
    pub fn priority(&self, round: usize) -> u64 {
        self.0.priorities[round]
    }

    /// Whether this persona writes (rather than reads) in sifting round
    /// `round` (0-based), for Algorithm 2.
    ///
    /// # Panics
    ///
    /// Panics if the persona was generated without enough write choices.
    pub fn wants_write(&self, round: usize) -> bool {
        self.0.choose_write[round]
    }

    /// Number of priority rounds the persona carries.
    pub fn priority_rounds(&self) -> usize {
        self.0.priorities.len()
    }

    /// Number of sifting rounds the persona carries choices for.
    pub fn sifting_rounds(&self) -> usize {
        self.0.choose_write.len()
    }
}

impl PartialEq for Persona {
    fn eq(&self, other: &Self) -> bool {
        self.0.origin == other.0.origin
    }
}

impl Eq for Persona {}

impl std::hash::Hash for Persona {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.origin.hash(state);
    }
}

impl std::fmt::Display for Persona {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "persona({} from {})", self.0.input, self.0.origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = PersonaSpec {
            priority_rounds: 4,
            priority_range: 100,
            write_probs: vec![0.3, 0.7],
        };
        let a = Persona::generate(ProcessId(1), 5, &spec, &mut rng(9));
        let b = Persona::generate(ProcessId(1), 5, &spec, &mut rng(9));
        for r in 0..4 {
            assert_eq!(a.priority(r), b.priority(r));
        }
        for r in 0..2 {
            assert_eq!(a.wants_write(r), b.wants_write(r));
        }
        assert_eq!(a.coin(), b.coin());
    }

    #[test]
    fn equality_and_hash_use_origin() {
        use std::collections::HashSet;
        let spec = PersonaSpec::default();
        let a = Persona::generate(ProcessId(1), 5, &spec, &mut rng(1));
        let b = Persona::generate(ProcessId(1), 5, &spec, &mut rng(2));
        let c = Persona::generate(ProcessId(2), 5, &spec, &mut rng(1));
        assert_eq!(a, b, "same origin, same persona identity");
        assert_ne!(a, c, "different origins are distinct personae");
        let set: HashSet<Persona> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn priorities_are_in_range() {
        let spec = PersonaSpec {
            priority_rounds: 64,
            priority_range: 10,
            write_probs: Vec::new(),
        };
        let p = Persona::generate(ProcessId(0), 0, &spec, &mut rng(3));
        for r in 0..64 {
            assert!((1..=10).contains(&p.priority(r)));
        }
        assert_eq!(p.priority_rounds(), 64);
        assert_eq!(p.sifting_rounds(), 0);
    }

    #[test]
    fn write_probs_calibrate_choices() {
        let spec = PersonaSpec {
            priority_rounds: 0,
            priority_range: 0,
            write_probs: vec![0.0; 50].into_iter().chain(vec![1.0; 50]).collect(),
        };
        let p = Persona::generate(ProcessId(0), 0, &spec, &mut rng(4));
        for r in 0..50 {
            assert!(!p.wants_write(r), "probability 0 never writes");
        }
        for r in 50..100 {
            assert!(p.wants_write(r), "probability 1 always writes");
        }
    }

    #[test]
    fn bare_persona_has_no_bits() {
        let p = Persona::bare(ProcessId(3), 77);
        assert_eq!(p.input(), 77);
        assert_eq!(p.origin(), ProcessId(3));
        assert_eq!(p.priority_rounds(), 0);
        assert_eq!(p.sifting_rounds(), 0);
        assert!(!p.coin());
    }

    #[test]
    fn clone_is_shallow_and_cheap() {
        let spec = PersonaSpec {
            priority_rounds: 1000,
            priority_range: 1 << 60,
            write_probs: vec![0.5; 1000],
        };
        let p = Persona::generate(ProcessId(0), 1, &spec, &mut rng(5));
        let q = p.clone();
        assert!(Arc::ptr_eq(&p.0, &q.0));
    }

    #[test]
    fn display_is_informative() {
        let p = Persona::bare(ProcessId(2), 9);
        assert_eq!(p.to_string(), "persona(9 from p2)");
    }

    #[test]
    #[should_panic(expected = "priority range must be positive")]
    fn zero_range_with_rounds_panics() {
        let spec = PersonaSpec {
            priority_rounds: 1,
            priority_range: 0,
            write_probs: Vec::new(),
        };
        Persona::generate(ProcessId(0), 0, &spec, &mut rng(0));
    }
}

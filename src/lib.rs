//! # sift — randomized consensus against an oblivious adversary
//!
//! Facade crate re-exporting the whole workspace. See the README for an
//! overview and the member crates for details:
//!
//! * [`sim`] — deterministic oblivious-adversary shared-memory simulator.
//! * [`shmem`] — threaded shared-memory substrate over real atomics.
//! * [`core`] — the paper's conciliators (snapshot, sifting, CIL-embedded).
//! * [`adopt_commit`] — adopt-commit objects.
//! * [`consensus`] — consensus from conciliator/adopt-commit alternation.
//! * [`tas`] — test-and-set from sifting (the §5 connection).
//! * [`obs`] — mergeable observation primitives (striped counters,
//!   log-bucketed histograms, reports) behind the observability layer.
//! * [`service`] — consensus-as-a-service: a sharded multi-instance
//!   frontend batching proposals into per-instance consensus runs.

#![forbid(unsafe_code)]

pub use sift_adopt_commit as adopt_commit;
pub use sift_consensus as consensus;
pub use sift_core as core;
pub use sift_obs as obs;
pub use sift_service as service;
pub use sift_shmem as shmem;
pub use sift_sim as sim;
pub use sift_tas as tas;
